package chain

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// collectJournal records every op and committed view it sees.
type collectJournal struct {
	ops    []Op
	epochs []uint64
	fail   error // when set, Append fails and the mutation must abort
}

func (j *collectJournal) Append(op Op) error {
	if j.fail != nil {
		return j.fail
	}
	j.ops = append(j.ops, op)
	return nil
}

func (j *collectJournal) Committed(v *View) { j.epochs = append(j.epochs, v.Epoch()) }

func TestViewImmutableUnderMutation(t *testing.T) {
	l := buildSmallLedger(t) // shared helper in ledger_test.go
	if _, err := l.AppendRS(NewTokenSet(0, 2), 0.5, 2); err != nil {
		t.Fatal(err)
	}
	v := l.View()
	wantTokens, wantRings, wantEpoch := v.NumTokens(), v.NumRS(), v.Epoch()
	var before bytes.Buffer
	if _, err := v.WriteTo(&before); err != nil {
		t.Fatal(err)
	}

	// Mutate the ledger heavily after pinning.
	for i := 0; i < 5; i++ {
		b := l.BeginBlock()
		if _, err := l.AddTx(b, 3); err != nil {
			t.Fatal(err)
		}
		if _, err := l.AppendRS(NewTokenSet(TokenID(i)), 1, 1); err != nil {
			t.Fatal(err)
		}
	}

	if v.NumTokens() != wantTokens || v.NumRS() != wantRings || v.Epoch() != wantEpoch {
		t.Fatalf("pinned view changed: tokens %d→%d rings %d→%d epoch %d→%d",
			wantTokens, v.NumTokens(), wantRings, v.NumRS(), wantEpoch, v.Epoch())
	}
	var after bytes.Buffer
	if _, err := v.WriteTo(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("pinned view serialisation changed after ledger mutation")
	}
	if l.View().Epoch() != wantEpoch+15 {
		t.Fatalf("epoch should advance once per op: got %d, want %d", l.View().Epoch(), wantEpoch+15)
	}
}

func TestEpochCountsOps(t *testing.T) {
	l := NewLedger()
	if l.Epoch() != 0 {
		t.Fatalf("fresh ledger epoch = %d", l.Epoch())
	}
	b := l.BeginBlock()
	if l.Epoch() != 1 {
		t.Fatalf("after BeginBlock epoch = %d", l.Epoch())
	}
	if _, err := l.AddTxAmounts(b, []uint64{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if l.Epoch() != 2 {
		t.Fatalf("after AddTxAmounts epoch = %d (one op regardless of outputs)", l.Epoch())
	}
	if _, err := l.AppendRS(NewTokenSet(0), 1, 1); err != nil {
		t.Fatal(err)
	}
	if l.Epoch() != 3 {
		t.Fatalf("after AppendRS epoch = %d", l.Epoch())
	}
	// Failed mutations must not advance the epoch.
	if _, err := l.AppendRS(NewTokenSet(99), 1, 1); err == nil {
		t.Fatal("expected unknown-token error")
	}
	if _, err := l.AddTxAmounts(BlockID(9), []uint64{1}); err == nil {
		t.Fatal("expected unknown-block error")
	}
	if l.Epoch() != 3 {
		t.Fatalf("failed ops advanced the epoch to %d", l.Epoch())
	}
}

func TestJournalWriteAheadAndReplay(t *testing.T) {
	j := &collectJournal{}
	l := NewLedger()
	l.SetJournal(j)
	b := l.BeginBlock()
	if _, err := l.AddTxAmounts(b, []uint64{0, 5}); err != nil { // 0 normalises to 1
		t.Fatal(err)
	}
	if _, err := l.AppendRS(NewTokenSet(0, 1), 0.7, 2); err != nil {
		t.Fatal(err)
	}
	if len(j.ops) != 3 {
		t.Fatalf("journal saw %d ops, want 3", len(j.ops))
	}
	for i, op := range j.ops {
		if op.Seq != uint64(i) {
			t.Fatalf("op %d has seq %d", i, op.Seq)
		}
	}
	if j.ops[1].Amounts[0] != 1 {
		t.Fatalf("journaled amounts not normalised: %v", j.ops[1].Amounts)
	}
	if len(j.epochs) != 3 || j.epochs[2] != 3 {
		t.Fatalf("Committed epochs = %v", j.epochs)
	}

	// Replaying the journaled ops rebuilds byte-identical state.
	replayed := NewLedger()
	for _, op := range j.ops {
		if err := replayed.Apply(op); err != nil {
			t.Fatalf("Apply(%+v): %v", op, err)
		}
	}
	var a, bbuf bytes.Buffer
	if _, err := l.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := replayed.WriteTo(&bbuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), bbuf.Bytes()) {
		t.Fatal("replayed ledger differs from original")
	}

	// Out-of-sequence replay is rejected.
	if err := replayed.Apply(Op{Seq: 99, Kind: OpBlock}); !errors.Is(err, ErrOpSeq) {
		t.Fatalf("expected ErrOpSeq, got %v", err)
	}
}

func TestJournalAppendFailureAbortsMutation(t *testing.T) {
	j := &collectJournal{}
	l := NewLedger()
	b := l.BeginBlock()
	if _, err := l.AddTx(b, 2); err != nil {
		t.Fatal(err)
	}
	l.SetJournal(j)
	j.fail = errors.New("disk full")
	if _, err := l.AppendRS(NewTokenSet(0), 1, 1); err == nil {
		t.Fatal("expected journal failure to surface")
	}
	if _, err := l.AddTxAmounts(b, []uint64{1}); err == nil {
		t.Fatal("expected journal failure to surface")
	}
	if _, err := l.BeginBlockErr(); err == nil {
		t.Fatal("expected journal failure to surface")
	}
	if l.NumRS() != 0 || l.NumTxs() != 1 || l.NumBlocks() != 1 || l.Epoch() != 2 {
		t.Fatalf("mutation applied despite journal failure: rs=%d txs=%d blocks=%d epoch=%d",
			l.NumRS(), l.NumTxs(), l.NumBlocks(), l.Epoch())
	}
}

func TestOpsRebuildsState(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		l := randomLedger(rng)
		v := l.View()
		ops := v.Ops()
		if uint64(len(ops)) != v.Epoch() {
			t.Fatalf("Ops len %d != epoch %d", len(ops), v.Epoch())
		}
		rebuilt := NewLedger()
		for _, op := range ops {
			if err := rebuilt.Apply(op); err != nil {
				t.Fatalf("apply: %v", err)
			}
		}
		var a, b bytes.Buffer
		if _, err := v.WriteTo(&a); err != nil {
			t.Fatal(err)
		}
		if _, err := rebuilt.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("trial %d: Ops() rebuild differs", trial)
		}
	}
}

// TestConcurrentReadersUnderMutation is the memory-safety half of the epoch
// contract: run it under -race (internal/chain is on the CI race list).
// Readers pin views and iterate them while a writer appends blocks, txs and
// rings; every pinned view must stay self-consistent.
func TestConcurrentReadersUnderMutation(t *testing.T) {
	l := buildSmallLedger(t)
	const readers = 4
	const writerOps = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := l.View()
				nt, nr := v.NumTokens(), v.NumRS()
				sum := 0
				for i := 0; i < nt; i++ {
					tok, err := v.Token(TokenID(i))
					if err != nil {
						t.Errorf("view token %d: %v", i, err)
						return
					}
					sum += int(tok.Origin)
				}
				for _, rec := range v.Rings() {
					if len(rec.Tokens) == 0 {
						t.Error("empty ring in pinned view")
						return
					}
				}
				if v.NumRS() != nr || v.NumTokens() != nt {
					t.Error("pinned view mutated underneath reader")
					return
				}
				_ = sum
			}
		}()
	}
	for i := 0; i < writerOps; i++ {
		b := l.BeginBlock()
		if _, err := l.AddTx(b, 2); err != nil {
			t.Fatal(err)
		}
		if _, err := l.AppendRS(NewTokenSet(TokenID(i%l.NumTokens())), 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
