package chain

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Snapshot is the portable encoding of a ledger: enough to rebuild the exact
// chain state elsewhere (a light node, a test fixture, an experiment replay).
// The format is line-framed JSON: one header line, then one line per block,
// transaction and ring, in order. Line framing keeps decoding streaming and
// makes snapshots diffable.
type Snapshot struct {
	Version int `json:"version"`
	Blocks  int `json:"blocks"`
	Txs     int `json:"txs"`
	Tokens  int `json:"tokens"`
	Rings   int `json:"rings"`
}

// snapshotVersion is bumped on breaking format changes.
const snapshotVersion = 1

type txLine struct {
	Block   BlockID  `json:"block"`
	Amounts []uint64 `json:"amounts"`
}

type ringLine struct {
	Tokens TokenSet `json:"tokens"`
	C      float64  `json:"c"`
	L      int      `json:"l"`
}

// Errors from snapshot decoding.
var (
	ErrBadSnapshot     = errors.New("chain: malformed snapshot")
	ErrSnapshotVersion = errors.New("chain: unsupported snapshot version")
)

// WriteTo serialises the current ledger state. It implements io.WriterTo.
// The snapshot is taken from one pinned view, so it is internally consistent
// even if the ledger is being mutated concurrently.
func (l *Ledger) WriteTo(w io.Writer) (int64, error) { return l.View().WriteTo(w) }

// WriteTo serialises the view. It implements io.WriterTo.
func (v *View) WriteTo(w io.Writer) (int64, error) {
	bw := &countingWriter{w: w}
	enc := json.NewEncoder(bw)
	head := Snapshot{
		Version: snapshotVersion,
		Blocks:  v.NumBlocks(),
		Txs:     v.NumTxs(),
		Tokens:  v.NumTokens(),
		Rings:   v.NumRS(),
	}
	if err := enc.Encode(head); err != nil {
		return bw.n, err
	}
	for _, tx := range v.txs {
		amounts := make([]uint64, len(tx.Outputs))
		for i, tok := range tx.Outputs {
			amounts[i] = v.tokens[tok].Amount
		}
		if err := enc.Encode(txLine{Block: tx.Block, Amounts: amounts}); err != nil {
			return bw.n, err
		}
	}
	for _, r := range v.rings {
		if err := enc.Encode(ringLine{Tokens: r.Tokens, C: r.C, L: r.L}); err != nil {
			return bw.n, err
		}
	}
	return bw.n, nil
}

// ReadLedger rebuilds a ledger from a snapshot stream produced by WriteTo.
func ReadLedger(r io.Reader) (*Ledger, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var head Snapshot
	if err := dec.Decode(&head); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadSnapshot, err)
	}
	if head.Version != snapshotVersion {
		return nil, fmt.Errorf("%w: %d", ErrSnapshotVersion, head.Version)
	}
	l := NewLedger()
	for b := 0; b < head.Blocks; b++ {
		l.BeginBlock()
	}
	for i := 0; i < head.Txs; i++ {
		var line txLine
		if err := dec.Decode(&line); err != nil {
			return nil, fmt.Errorf("%w: tx %d: %v", ErrBadSnapshot, i, err)
		}
		if _, err := l.AddTxAmounts(line.Block, line.Amounts); err != nil {
			return nil, fmt.Errorf("%w: tx %d: %v", ErrBadSnapshot, i, err)
		}
	}
	for i := 0; i < head.Rings; i++ {
		var line ringLine
		if err := dec.Decode(&line); err != nil {
			return nil, fmt.Errorf("%w: ring %d: %v", ErrBadSnapshot, i, err)
		}
		if _, err := l.AppendRS(line.Tokens, line.C, line.L); err != nil {
			return nil, fmt.Errorf("%w: ring %d: %v", ErrBadSnapshot, i, err)
		}
	}
	if l.NumTokens() != head.Tokens {
		return nil, fmt.Errorf("%w: token count %d, header says %d", ErrBadSnapshot, l.NumTokens(), head.Tokens)
	}
	return l, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
