package chain

import (
	"errors"
	"testing"
)

func buildSmallLedger(t *testing.T) *Ledger {
	t.Helper()
	l := NewLedger()
	b0 := l.BeginBlock()
	if _, err := l.AddTx(b0, 2); err != nil { // h0 -> t0, t1
		t.Fatal(err)
	}
	if _, err := l.AddTx(b0, 1); err != nil { // h1 -> t2
		t.Fatal(err)
	}
	b1 := l.BeginBlock()
	if _, err := l.AddTx(b1, 3); err != nil { // h2 -> t3, t4, t5
		t.Fatal(err)
	}
	return l
}

func TestLedgerBasics(t *testing.T) {
	l := buildSmallLedger(t)
	if got, want := l.NumTokens(), 6; got != want {
		t.Fatalf("NumTokens = %d, want %d", got, want)
	}
	if got, want := l.NumTxs(), 3; got != want {
		t.Fatalf("NumTxs = %d, want %d", got, want)
	}
	if got, want := l.NumBlocks(), 2; got != want {
		t.Fatalf("NumBlocks = %d, want %d", got, want)
	}
	if got := l.Origin(0); got != 0 {
		t.Fatalf("Origin(t0) = %v, want h0", got)
	}
	if got := l.Origin(5); got != 2 {
		t.Fatalf("Origin(t5) = %v, want h2", got)
	}
	if got := l.Origin(99); got != NoTx {
		t.Fatalf("Origin(t99) = %v, want NoTx", got)
	}
	tx, err := l.Tx(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tx.Outputs) != 3 {
		t.Fatalf("h2 outputs = %v", tx.Outputs)
	}
}

func TestLedgerAddTxBadBlock(t *testing.T) {
	l := NewLedger()
	if _, err := l.AddTx(0, 1); err == nil {
		t.Fatal("AddTx to nonexistent block should fail")
	}
}

func TestLedgerAppendRS(t *testing.T) {
	l := buildSmallLedger(t)
	id, err := l.AppendRS(NewTokenSet(0, 2, 3), 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 {
		t.Fatalf("first RSID = %v, want 0", id)
	}
	rs, err := l.RS(id)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Tokens.Equal(TokenSet{0, 2, 3}) || rs.C != 0.5 || rs.L != 2 {
		t.Fatalf("unexpected record %+v", rs)
	}

	if _, err := l.AppendRS(nil, 1, 1); !errors.Is(err, ErrEmptyRing) {
		t.Fatalf("empty ring err = %v", err)
	}
	if _, err := l.AppendRS(NewTokenSet(99), 1, 1); !errors.Is(err, ErrUnknownToken) {
		t.Fatalf("unknown token err = %v", err)
	}
}

func TestLedgerRingsOver(t *testing.T) {
	l := buildSmallLedger(t)
	mustRS(t, l, NewTokenSet(0, 1))
	mustRS(t, l, NewTokenSet(3, 4))
	mustRS(t, l, NewTokenSet(2, 5))

	got := l.RingsOver(NewTokenSet(0, 3))
	if len(got) != 2 || got[0].ID != 0 || got[1].ID != 1 {
		t.Fatalf("RingsOver = %+v", got)
	}
	if got := l.RingsOver(NewTokenSet()); len(got) != 0 {
		t.Fatalf("RingsOver(empty) = %+v", got)
	}
}

func mustRS(t *testing.T, l *Ledger, tokens TokenSet) RSID {
	t.Helper()
	id, err := l.AppendRS(tokens, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestTokensInBlocks(t *testing.T) {
	l := buildSmallLedger(t)
	if got := l.TokensInBlocks(0, 0); !got.Equal(TokenSet{0, 1, 2}) {
		t.Fatalf("block 0 tokens = %v", got)
	}
	if got := l.TokensInBlocks(1, 1); !got.Equal(TokenSet{3, 4, 5}) {
		t.Fatalf("block 1 tokens = %v", got)
	}
	if got := l.TokensInBlocks(0, 1); len(got) != 6 {
		t.Fatalf("all tokens = %v", got)
	}
}

func TestOriginFunc(t *testing.T) {
	l := buildSmallLedger(t)
	origin := l.OriginFunc()
	if origin(2) != 1 {
		t.Fatalf("origin(t2) = %v", origin(2))
	}
	if origin(-1) != NoTx || origin(100) != NoTx {
		t.Fatal("out-of-range tokens must map to NoTx")
	}
}

func TestBuildBatches(t *testing.T) {
	l := NewLedger()
	// 4 blocks with 3, 2, 4, 1 tokens.
	for _, n := range []int{3, 2, 4, 1} {
		b := l.BeginBlock()
		if _, err := l.AddTx(b, n); err != nil {
			t.Fatal(err)
		}
	}
	bl, err := BuildBatches(l, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Block 0 (3 tokens) + block 1 (2 tokens) = 5 >= λ → batch 0 closes.
	// Block 2 (4 tokens) < 5, block 3 (+1) = 5 → batch 1 closes.
	if bl.Len() != 2 {
		t.Fatalf("batches = %d, want 2", bl.Len())
	}
	b0, _ := bl.Batch(0)
	if len(b0.Tokens) != 5 || b0.FirstBlock != 0 || b0.LastBlock != 1 {
		t.Fatalf("batch0 = %+v", b0)
	}
	b1, _ := bl.Batch(1)
	if len(b1.Tokens) != 5 || b1.FirstBlock != 2 || b1.LastBlock != 3 {
		t.Fatalf("batch1 = %+v", b1)
	}
	// Universe lookups.
	u, err := bl.Universe(0)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Equal(b0.Tokens) {
		t.Fatalf("universe(t0) = %v", u)
	}
	u, err = bl.Universe(7)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Equal(b1.Tokens) {
		t.Fatalf("universe(t7) = %v", u)
	}
	if _, err := bl.Universe(999); err == nil {
		t.Fatal("expected error for unknown token")
	}
}

func TestBuildBatchesTrailingPartial(t *testing.T) {
	l := NewLedger()
	for _, n := range []int{3, 3, 2} { // last 2 tokens don't reach λ=3? 3,3 close two batches, 2 trails
		b := l.BeginBlock()
		if _, err := l.AddTx(b, n); err != nil {
			t.Fatal(err)
		}
	}
	bl, err := BuildBatches(l, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bl.Len() != 3 {
		t.Fatalf("batches = %d, want 3 (two full + trailing partial)", bl.Len())
	}
	last, _ := bl.Batch(2)
	if len(last.Tokens) != 2 {
		t.Fatalf("trailing batch tokens = %v", last.Tokens)
	}
}

func TestBuildBatchesBadLambda(t *testing.T) {
	if _, err := BuildBatches(NewLedger(), 0); !errors.Is(err, ErrBadLambda) {
		t.Fatalf("err = %v, want ErrBadLambda", err)
	}
}

func TestBuildBatchesEmptyLedger(t *testing.T) {
	bl, err := BuildBatches(NewLedger(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if bl.Len() != 1 {
		t.Fatalf("empty ledger should produce a single empty batch, got %d", bl.Len())
	}
}
