package chain

import (
	"fmt"
	"slices"
)

// CheckPrefix verifies that v extends base: every block, transaction, token
// and ring of base must appear unchanged at the same position in v, with v
// free to hold more of each on top. A canonical rebuild of base (View.Ops
// replayed onto an empty ledger, as store.Seed does) satisfies this against
// the original, so a persistent data dir resumed alongside a freshly
// generated dataset can use it to refuse serving history that belongs to a
// different population.
func (v *View) CheckPrefix(base *View) error {
	if v.epoch < base.epoch {
		return fmt.Errorf("chain: view at epoch %d is behind base epoch %d", v.epoch, base.epoch)
	}
	if v.nblocks < base.nblocks || len(v.txs) < len(base.txs) ||
		len(v.tokens) < len(base.tokens) || len(v.rings) < len(base.rings) {
		return fmt.Errorf("chain: view (%d blocks, %d txs, %d tokens, %d rings) holds less than base (%d, %d, %d, %d)",
			v.nblocks, len(v.txs), len(v.tokens), len(v.rings),
			base.nblocks, len(base.txs), len(base.tokens), len(base.rings))
	}
	for i := range base.txs {
		got, want := v.txs[i], base.txs[i]
		if got.ID != want.ID || got.Block != want.Block || !slices.Equal(got.Outputs, want.Outputs) {
			return fmt.Errorf("chain: tx %d differs from base", want.ID)
		}
	}
	for i := range base.tokens {
		if v.tokens[i] != base.tokens[i] {
			return fmt.Errorf("chain: token %d differs from base", base.tokens[i].ID)
		}
	}
	for i := range base.rings {
		got, want := v.rings[i], base.rings[i]
		// KeyHash is deliberately excluded: ops do not journal the key-image
		// commitment, so a persisted ring legitimately lacks the hash its
		// in-memory twin carries.
		if got.ID != want.ID || got.Pos != want.Pos || got.C != want.C ||
			got.L != want.L || !slices.Equal(got.Tokens, want.Tokens) {
			return fmt.Errorf("chain: ring %d differs from base", want.ID)
		}
	}
	return nil
}
