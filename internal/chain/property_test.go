package chain

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomLedger builds a ledger with random blocks, transactions and
// configuration-compliant rings.
func randomLedger(rng *rand.Rand) *Ledger {
	l := NewLedger()
	nBlocks := 1 + rng.Intn(5)
	for b := 0; b < nBlocks; b++ {
		id := l.BeginBlock()
		for tx := 0; tx < 1+rng.Intn(4); tx++ {
			amounts := make([]uint64, 1+rng.Intn(3))
			for i := range amounts {
				amounts[i] = uint64(1 + rng.Intn(100))
			}
			if _, err := l.AddTxAmounts(id, amounts); err != nil {
				panic(err)
			}
		}
	}
	// Random rings over random token subsets.
	for r := 0; r < rng.Intn(4); r++ {
		var toks []TokenID
		for t := 0; t < l.NumTokens(); t++ {
			if rng.Intn(4) == 0 {
				toks = append(toks, TokenID(t))
			}
		}
		if len(toks) == 0 {
			continue
		}
		if _, err := l.AppendRS(NewTokenSet(toks...), 0.5+rng.Float64(), 1+rng.Intn(3)); err != nil {
			panic(err)
		}
	}
	return l
}

// Property: BuildBatches partitions the token universe — every token in
// exactly one batch, batches block-contiguous and sequential.
func TestBatchPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomLedger(rng)
		lambda := 1 + rng.Intn(10)
		bl, err := BuildBatches(l, lambda)
		if err != nil {
			return false
		}
		seen := make(map[TokenID]int)
		prevLast := BlockID(-1)
		for i := 0; i < bl.Len(); i++ {
			b, err := bl.Batch(i)
			if err != nil {
				return false
			}
			if b.FirstBlock != prevLast+1 {
				return false // batches must be sequential and gap-free
			}
			prevLast = b.LastBlock
			for _, tok := range b.Tokens {
				if _, dup := seen[tok]; dup {
					return false
				}
				seen[tok] = i
			}
		}
		if len(seen) != l.NumTokens() {
			return false
		}
		// BatchOf agrees with membership.
		for tok, batch := range seen {
			got, err := bl.BatchOf(tok)
			if err != nil || got.Index != batch {
				return false
			}
		}
		// All but the last batch hold ≥ λ tokens.
		for i := 0; i < bl.Len()-1; i++ {
			b, _ := bl.Batch(i)
			if len(b.Tokens) < lambda {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshot round trips preserve the full chain state.
func TestSnapshotRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomLedger(rng)
		var buf bytes.Buffer
		if _, err := l.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadLedger(&buf)
		if err != nil {
			return false
		}
		if got.NumBlocks() != l.NumBlocks() || got.NumTxs() != l.NumTxs() ||
			got.NumTokens() != l.NumTokens() || got.NumRS() != l.NumRS() {
			return false
		}
		for i := 0; i < l.NumTokens(); i++ {
			a, _ := l.Token(TokenID(i))
			b, _ := got.Token(TokenID(i))
			if a != b {
				return false
			}
		}
		for i := 0; i < l.NumRS(); i++ {
			a, _ := l.RS(RSID(i))
			b, _ := got.RS(RSID(i))
			if !a.Tokens.Equal(b.Tokens) || a.C != b.C || a.L != b.L {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: RingsOver returns exactly the rings intersecting the universe.
func TestRingsOverProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomLedger(rng)
		if l.NumTokens() == 0 {
			return true
		}
		var universe TokenSet
		for t := 0; t < l.NumTokens(); t++ {
			if rng.Intn(2) == 0 {
				universe = append(universe, TokenID(t))
			}
		}
		got := l.RingsOver(universe)
		gotIDs := make(map[RSID]bool, len(got))
		for _, r := range got {
			gotIDs[r.ID] = true
			if r.Tokens.Disjoint(universe) {
				return false
			}
		}
		for _, r := range l.Rings() {
			if !r.Tokens.Disjoint(universe) && !gotIDs[r.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
