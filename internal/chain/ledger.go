package chain

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Token is one unspent transaction output. The DA-MS algorithms only care
// about Origin (the historical transaction that produced the token); Block is
// kept so batches can be derived from block order, and Amount exists so the
// examples can model fees realistically.
type Token struct {
	ID     TokenID
	Origin TxID    // the historical transaction (HT) that output this token
	Block  BlockID // block in which the HT was recorded
	Amount uint64  // denominated value; unused by the solvers
}

// Tx is a historical transaction: it consumes some rings and produces output
// tokens. For the selection problem only the output side matters.
type Tx struct {
	ID      TxID
	Block   BlockID
	Outputs []TokenID
}

// RingRecord is a ring signature as it appears on the ledger: a token set
// (consumed token + mixins, indistinguishable to observers), the declared
// recursive (c, ℓ)-diversity requirement, and its proposal position.
type RingRecord struct {
	ID      RSID
	Tokens  TokenSet
	C       float64 // declared diversity parameter c
	L       int     // declared diversity parameter ℓ
	Pos     int     // proposal order (timestamp π); equals int(ID)
	KeyHash string  // key-image commitment; empty in pure simulations
}

// OpKind names one of the three ledger mutations. Together they are the
// complete op vocabulary: any ledger state is exactly the fold of an op
// sequence over the empty ledger, which is what the persistent store
// (internal/store) journals and replays.
type OpKind string

// The ledger op vocabulary.
const (
	OpBlock OpKind = "block" // BeginBlock
	OpTx    OpKind = "tx"    // AddTxAmounts
	OpRS    OpKind = "rs"    // AppendRS
)

// Op is one journaled ledger mutation. Seq is the op's position in the
// ledger's history: the op that takes the ledger from epoch n to epoch n+1
// has Seq n, so Seq doubles as the epoch the op was applied at.
type Op struct {
	Seq     uint64   `json:"seq"`
	Kind    OpKind   `json:"op"`
	Block   BlockID  `json:"block,omitempty"`
	Amounts []uint64 `json:"amounts,omitempty"`
	Tokens  TokenSet `json:"tokens,omitempty"`
	C       float64  `json:"c,omitempty"`
	L       int      `json:"l,omitempty"`
}

// Journal receives every ledger mutation, write-ahead: Append is called
// after the op validated but before it is applied, and an Append error
// aborts the mutation (the caller sees the error, the ledger is unchanged).
// Committed is called after the op applied and the successor view published,
// with that view — the hook snapshots and epoch telemetry key off.
// Journal methods run under the ledger's mutation lock and must not call
// back into ledger mutators.
type Journal interface {
	Append(op Op) error
	Committed(v *View)
}

// View is an immutable snapshot of the ledger at one epoch. Readers obtain
// one with Ledger.View() — a single atomic load — and can then read it
// forever without locks: mutators never modify a published view, they
// publish a successor. The epoch is the number of ops applied so far, so it
// increases by exactly one per mutation.
//
// Views share backing arrays with their successors (appends extend, never
// overwrite, the committed prefix), so pinning a view costs nothing beyond
// retaining the chain state that existed when it was published.
type View struct {
	epoch   uint64
	tokens  []Token
	txs     []Tx
	nblocks int
	rings   []RingRecord
}

// Ledger is the append-only chain state: all historical transactions, all
// tokens and all ring signatures in proposal order.
//
// Concurrency: mutators serialise on an internal lock and publish immutable
// epoch-numbered views; every read method delegates to the current view, so
// reads are always safe concurrently with mutation and observe either the
// pre- or post-op state, never a half-applied one. Readers that need a
// consistent multi-call snapshot pin one View() and read from it.
type Ledger struct {
	mu      sync.Mutex // serialises mutators and journal emission
	view    atomic.Pointer[View]
	journal Journal
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	l := &Ledger{}
	l.view.Store(&View{})
	return l
}

// Errors returned by ledger mutations.
var (
	ErrUnknownToken = errors.New("chain: unknown token")
	ErrUnknownTx    = errors.New("chain: unknown transaction")
	ErrUnknownRS    = errors.New("chain: unknown ring signature")
	ErrEmptyRing    = errors.New("chain: ring signature must contain at least one token")
	ErrBadOp        = errors.New("chain: malformed ledger op")
	ErrOpSeq        = errors.New("chain: op sequence does not match ledger epoch")
)

// SetJournal installs the mutation journal. Install it before the ledger is
// shared across goroutines (typically right after recovery); a nil journal
// disables journaling.
func (l *Ledger) SetJournal(j Journal) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.journal = j
}

// View returns the current immutable snapshot (one atomic load).
func (l *Ledger) View() *View { return l.view.Load() }

// Epoch returns the number of ops applied to the ledger so far.
func (l *Ledger) Epoch() uint64 { return l.view.Load().epoch }

// publish journals op (write-ahead), builds the successor view with build,
// stores it and notifies the journal. Callers hold l.mu and have validated
// the op against v.
func (l *Ledger) publish(v *View, op Op, build func() *View) error {
	if l.journal != nil {
		if err := l.journal.Append(op); err != nil {
			return fmt.Errorf("chain: journal append: %w", err)
		}
	}
	nv := build()
	nv.epoch = v.epoch + 1
	l.view.Store(nv)
	if l.journal != nil {
		l.journal.Committed(nv)
	}
	return nil
}

// BeginBlock appends a new empty block and returns its id.
func (l *Ledger) BeginBlock() BlockID {
	id, err := l.BeginBlockErr()
	if err != nil {
		// Only the journal can fail a block append; without one this is
		// unreachable. Panicking preserves the historical no-error signature
		// for the non-persistent callers that dominate the codebase.
		panic(err)
	}
	return id
}

// BeginBlockErr is BeginBlock with the journal error surfaced; persistent
// deployments (where an append can fail on I/O) must use this form.
func (l *Ledger) BeginBlockErr() (BlockID, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	v := l.view.Load()
	id := BlockID(v.nblocks)
	err := l.publish(v, Op{Seq: v.epoch, Kind: OpBlock}, func() *View {
		return &View{tokens: v.tokens, txs: v.txs, nblocks: v.nblocks + 1, rings: v.rings}
	})
	if err != nil {
		return 0, err
	}
	return id, nil
}

// AddTx records a historical transaction with n output tokens in the given
// block and returns the new TxID. Amounts default to 1 each.
func (l *Ledger) AddTx(block BlockID, nOutputs int) (TxID, error) {
	return l.AddTxAmounts(block, make([]uint64, nOutputs))
}

// AddTxAmounts records a historical transaction with one output token per
// amount (zero amounts are normalised to 1).
func (l *Ledger) AddTxAmounts(block BlockID, amounts []uint64) (TxID, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	v := l.view.Load()
	if int(block) >= v.nblocks || block < 0 {
		return NoTx, fmt.Errorf("chain: block %v does not exist", block)
	}
	// Normalise before journaling so the op replays byte-identically.
	norm := make([]uint64, len(amounts))
	for i, a := range amounts {
		if a == 0 {
			a = 1
		}
		norm[i] = a
	}
	tx := Tx{ID: TxID(len(v.txs)), Block: block}
	err := l.publish(v, Op{Seq: v.epoch, Kind: OpTx, Block: block, Amounts: norm}, func() *View {
		tokens := v.tokens
		for _, a := range norm {
			tok := Token{ID: TokenID(len(tokens)), Origin: tx.ID, Block: block, Amount: a}
			tokens = append(tokens, tok)
			tx.Outputs = append(tx.Outputs, tok.ID)
		}
		return &View{tokens: tokens, txs: append(v.txs, tx), nblocks: v.nblocks, rings: v.rings}
	})
	if err != nil {
		return NoTx, err
	}
	return tx.ID, nil
}

// AppendRS records a ring signature with its declared diversity requirement
// and returns its RSID. Tokens must all exist.
func (l *Ledger) AppendRS(tokens TokenSet, c float64, lreq int) (RSID, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	v := l.view.Load()
	if len(tokens) == 0 {
		return -1, ErrEmptyRing
	}
	for _, t := range tokens {
		if int(t) >= len(v.tokens) || t < 0 {
			return -1, fmt.Errorf("%w: %v", ErrUnknownToken, t)
		}
	}
	id := RSID(len(v.rings))
	clone := tokens.Clone()
	err := l.publish(v, Op{Seq: v.epoch, Kind: OpRS, Tokens: clone, C: c, L: lreq}, func() *View {
		rec := RingRecord{ID: id, Tokens: clone, C: c, L: lreq, Pos: int(id)}
		return &View{tokens: v.tokens, txs: v.txs, nblocks: v.nblocks, rings: append(v.rings, rec)}
	})
	if err != nil {
		return -1, err
	}
	return id, nil
}

// Apply replays one journaled op. The op's Seq must equal the ledger's
// current epoch (ErrOpSeq otherwise), which makes replay idempotence checks
// and gap detection the caller's one-line job. Used by the persistent store
// during recovery; the journal, if any, sees the op again like a live one.
func (l *Ledger) Apply(op Op) error {
	if op.Seq != l.Epoch() {
		return fmt.Errorf("%w: op seq %d, ledger epoch %d", ErrOpSeq, op.Seq, l.Epoch())
	}
	switch op.Kind {
	case OpBlock:
		_, err := l.BeginBlockErr()
		return err
	case OpTx:
		_, err := l.AddTxAmounts(op.Block, op.Amounts)
		return err
	case OpRS:
		_, err := l.AppendRS(op.Tokens, op.C, op.L)
		return err
	default:
		return fmt.Errorf("%w: unknown kind %q", ErrBadOp, op.Kind)
	}
}

// Ledger read methods: each delegates to the current view. Callers that need
// several reads to agree on one chain state should pin l.View() themselves.

// NumTokens returns the number of tokens ever created.
func (l *Ledger) NumTokens() int { return l.View().NumTokens() }

// NumTxs returns the number of historical transactions.
func (l *Ledger) NumTxs() int { return l.View().NumTxs() }

// NumBlocks returns the chain height.
func (l *Ledger) NumBlocks() int { return l.View().NumBlocks() }

// NumRS returns the number of recorded ring signatures.
func (l *Ledger) NumRS() int { return l.View().NumRS() }

// Token returns the token with the given id.
func (l *Ledger) Token(id TokenID) (Token, error) { return l.View().Token(id) }

// Origin returns the historical transaction of a token, or NoTx if unknown.
func (l *Ledger) Origin(id TokenID) TxID { return l.View().Origin(id) }

// OriginFunc returns a fast token→HT lookup closure over the current tokens.
// The closure stays valid for tokens existing at call time even if more
// tokens are appended later.
func (l *Ledger) OriginFunc() func(TokenID) TxID { return l.View().OriginFunc() }

// Tx returns the transaction with the given id.
func (l *Ledger) Tx(id TxID) (Tx, error) { return l.View().Tx(id) }

// RS returns the ring signature with the given id.
func (l *Ledger) RS(id RSID) (RingRecord, error) { return l.View().RS(id) }

// Rings returns all ring signatures in proposal order. The returned slice is
// shared; callers must not mutate it.
func (l *Ledger) Rings() []RingRecord { return l.View().Rings() }

// TokensInBlocks returns all tokens produced by transactions in blocks
// [from, to] inclusive, sorted.
func (l *Ledger) TokensInBlocks(from, to BlockID) TokenSet {
	return l.View().TokensInBlocks(from, to)
}

// RingsOver returns, in proposal order, the ring signatures whose token sets
// intersect universe. This is the "R_π^T" of the paper restricted to a batch.
func (l *Ledger) RingsOver(universe TokenSet) []RingRecord {
	return l.View().RingsOver(universe)
}

// View read methods — the same contract as the Ledger methods of the same
// name, evaluated against this immutable snapshot.

// Epoch returns the number of ops that produced this view.
func (v *View) Epoch() uint64 { return v.epoch }

// NumTokens returns the number of tokens in this view.
func (v *View) NumTokens() int { return len(v.tokens) }

// NumTxs returns the number of historical transactions in this view.
func (v *View) NumTxs() int { return len(v.txs) }

// NumBlocks returns the chain height in this view.
func (v *View) NumBlocks() int { return v.nblocks }

// NumRS returns the number of ring signatures in this view.
func (v *View) NumRS() int { return len(v.rings) }

// Token returns the token with the given id.
func (v *View) Token(id TokenID) (Token, error) {
	if id < 0 || int(id) >= len(v.tokens) {
		return Token{}, fmt.Errorf("%w: %v", ErrUnknownToken, id)
	}
	return v.tokens[id], nil
}

// Origin returns the historical transaction of a token, or NoTx if unknown.
func (v *View) Origin(id TokenID) TxID {
	if id < 0 || int(id) >= len(v.tokens) {
		return NoTx
	}
	return v.tokens[id].Origin
}

// OriginFunc returns a fast token→HT lookup closure over this view's tokens.
func (v *View) OriginFunc() func(TokenID) TxID {
	tokens := v.tokens
	return func(id TokenID) TxID {
		if id < 0 || int(id) >= len(tokens) {
			return NoTx
		}
		return tokens[id].Origin
	}
}

// Tx returns the transaction with the given id.
func (v *View) Tx(id TxID) (Tx, error) {
	if id < 0 || int(id) >= len(v.txs) {
		return Tx{}, fmt.Errorf("%w: %v", ErrUnknownTx, id)
	}
	return v.txs[id], nil
}

// RS returns the ring signature with the given id.
func (v *View) RS(id RSID) (RingRecord, error) {
	if id < 0 || int(id) >= len(v.rings) {
		return RingRecord{}, fmt.Errorf("%w: %v", ErrUnknownRS, id)
	}
	return v.rings[id], nil
}

// Rings returns all ring signatures in proposal order. The returned slice is
// shared; callers must not mutate it.
func (v *View) Rings() []RingRecord { return v.rings }

// TokensInBlocks returns all tokens produced by transactions in blocks
// [from, to] inclusive, sorted.
func (v *View) TokensInBlocks(from, to BlockID) TokenSet {
	var out TokenSet
	for _, tok := range v.tokens {
		if tok.Block >= from && tok.Block <= to {
			out = append(out, tok.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RingsOver returns, in proposal order, the ring signatures whose token sets
// intersect universe.
func (v *View) RingsOver(universe TokenSet) []RingRecord {
	var out []RingRecord
	for _, r := range v.rings {
		if !r.Tokens.Disjoint(universe) {
			out = append(out, r)
		}
	}
	return out
}

// Ops returns a canonical op sequence that rebuilds exactly this view's
// state on an empty ledger: all blocks, then transactions in id order, then
// rings in proposal order. The sequence has the same length as the view's
// epoch (one op per historical mutation), so the rebuilt ledger lands on the
// same epoch; only the interleaving of the original history is lost, never
// the state. Used to seed a fresh persistent store from an existing chain.
func (v *View) Ops() []Op {
	ops := make([]Op, 0, v.epoch)
	seq := uint64(0)
	for b := 0; b < v.nblocks; b++ {
		ops = append(ops, Op{Seq: seq, Kind: OpBlock})
		seq++
	}
	for _, tx := range v.txs {
		amounts := make([]uint64, len(tx.Outputs))
		for i, tok := range tx.Outputs {
			amounts[i] = v.tokens[tok].Amount
		}
		ops = append(ops, Op{Seq: seq, Kind: OpTx, Block: tx.Block, Amounts: amounts})
		seq++
	}
	for _, r := range v.rings {
		ops = append(ops, Op{Seq: seq, Kind: OpRS, Tokens: r.Tokens, C: r.C, L: r.L})
		seq++
	}
	return ops
}
