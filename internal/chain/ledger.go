package chain

import (
	"errors"
	"fmt"
	"sort"
)

// Token is one unspent transaction output. The DA-MS algorithms only care
// about Origin (the historical transaction that produced the token); Block is
// kept so batches can be derived from block order, and Amount exists so the
// examples can model fees realistically.
type Token struct {
	ID     TokenID
	Origin TxID    // the historical transaction (HT) that output this token
	Block  BlockID // block in which the HT was recorded
	Amount uint64  // denominated value; unused by the solvers
}

// Tx is a historical transaction: it consumes some rings and produces output
// tokens. For the selection problem only the output side matters.
type Tx struct {
	ID      TxID
	Block   BlockID
	Outputs []TokenID
}

// RingRecord is a ring signature as it appears on the ledger: a token set
// (consumed token + mixins, indistinguishable to observers), the declared
// recursive (c, ℓ)-diversity requirement, and its proposal position.
type RingRecord struct {
	ID      RSID
	Tokens  TokenSet
	C       float64 // declared diversity parameter c
	L       int     // declared diversity parameter ℓ
	Pos     int     // proposal order (timestamp π); equals int(ID)
	KeyHash string  // key-image commitment; empty in pure simulations
}

// Block groups transactions; height is its BlockID.
type Block struct {
	ID  BlockID
	Txs []TxID
}

// Ledger is the append-only chain state: all historical transactions, all
// tokens and all ring signatures in proposal order. It is not safe for
// concurrent mutation; wrap it if a concurrent writer is needed (the
// TokenMagic framework serialises writes per batch).
type Ledger struct {
	tokens []Token
	txs    []Tx
	blocks []Block
	rings  []RingRecord
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

// Errors returned by ledger mutations.
var (
	ErrUnknownToken = errors.New("chain: unknown token")
	ErrUnknownTx    = errors.New("chain: unknown transaction")
	ErrUnknownRS    = errors.New("chain: unknown ring signature")
	ErrEmptyRing    = errors.New("chain: ring signature must contain at least one token")
)

// BeginBlock appends a new empty block and returns its id.
func (l *Ledger) BeginBlock() BlockID {
	id := BlockID(len(l.blocks))
	l.blocks = append(l.blocks, Block{ID: id})
	return id
}

// AddTx records a historical transaction with n output tokens in the given
// block and returns the new TxID. Amounts default to 1 each.
func (l *Ledger) AddTx(block BlockID, nOutputs int) (TxID, error) {
	return l.AddTxAmounts(block, make([]uint64, nOutputs))
}

// AddTxAmounts records a historical transaction with one output token per
// amount (zero amounts are normalised to 1).
func (l *Ledger) AddTxAmounts(block BlockID, amounts []uint64) (TxID, error) {
	if int(block) >= len(l.blocks) || block < 0 {
		return NoTx, fmt.Errorf("chain: block %v does not exist", block)
	}
	tx := Tx{ID: TxID(len(l.txs)), Block: block}
	for _, a := range amounts {
		if a == 0 {
			a = 1
		}
		tok := Token{ID: TokenID(len(l.tokens)), Origin: tx.ID, Block: block, Amount: a}
		l.tokens = append(l.tokens, tok)
		tx.Outputs = append(tx.Outputs, tok.ID)
	}
	l.txs = append(l.txs, tx)
	l.blocks[block].Txs = append(l.blocks[block].Txs, tx.ID)
	return tx.ID, nil
}

// AppendRS records a ring signature with its declared diversity requirement
// and returns its RSID. Tokens must all exist.
func (l *Ledger) AppendRS(tokens TokenSet, c float64, lreq int) (RSID, error) {
	if len(tokens) == 0 {
		return -1, ErrEmptyRing
	}
	for _, t := range tokens {
		if int(t) >= len(l.tokens) || t < 0 {
			return -1, fmt.Errorf("%w: %v", ErrUnknownToken, t)
		}
	}
	id := RSID(len(l.rings))
	l.rings = append(l.rings, RingRecord{
		ID: id, Tokens: tokens.Clone(), C: c, L: lreq, Pos: int(id),
	})
	return id, nil
}

// NumTokens returns the number of tokens ever created.
func (l *Ledger) NumTokens() int { return len(l.tokens) }

// NumTxs returns the number of historical transactions.
func (l *Ledger) NumTxs() int { return len(l.txs) }

// NumBlocks returns the chain height.
func (l *Ledger) NumBlocks() int { return len(l.blocks) }

// NumRS returns the number of recorded ring signatures.
func (l *Ledger) NumRS() int { return len(l.rings) }

// Token returns the token with the given id.
func (l *Ledger) Token(id TokenID) (Token, error) {
	if id < 0 || int(id) >= len(l.tokens) {
		return Token{}, fmt.Errorf("%w: %v", ErrUnknownToken, id)
	}
	return l.tokens[id], nil
}

// Origin returns the historical transaction of a token, or NoTx if unknown.
func (l *Ledger) Origin(id TokenID) TxID {
	if id < 0 || int(id) >= len(l.tokens) {
		return NoTx
	}
	return l.tokens[id].Origin
}

// OriginFunc returns a fast token→HT lookup closure over the current tokens.
// The closure stays valid for tokens existing at call time even if more
// tokens are appended later.
func (l *Ledger) OriginFunc() func(TokenID) TxID {
	tokens := l.tokens
	return func(id TokenID) TxID {
		if id < 0 || int(id) >= len(tokens) {
			return NoTx
		}
		return tokens[id].Origin
	}
}

// Tx returns the transaction with the given id.
func (l *Ledger) Tx(id TxID) (Tx, error) {
	if id < 0 || int(id) >= len(l.txs) {
		return Tx{}, fmt.Errorf("%w: %v", ErrUnknownTx, id)
	}
	return l.txs[id], nil
}

// RS returns the ring signature with the given id.
func (l *Ledger) RS(id RSID) (RingRecord, error) {
	if id < 0 || int(id) >= len(l.rings) {
		return RingRecord{}, fmt.Errorf("%w: %v", ErrUnknownRS, id)
	}
	return l.rings[id], nil
}

// Rings returns all ring signatures in proposal order. The returned slice is
// shared; callers must not mutate it.
func (l *Ledger) Rings() []RingRecord { return l.rings }

// TokensInBlocks returns all tokens produced by transactions in blocks
// [from, to] inclusive, sorted.
func (l *Ledger) TokensInBlocks(from, to BlockID) TokenSet {
	var out TokenSet
	for _, tok := range l.tokens {
		if tok.Block >= from && tok.Block <= to {
			out = append(out, tok.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RingsOver returns, in proposal order, the ring signatures whose token sets
// intersect universe. This is the "R_π^T" of the paper restricted to a batch.
func (l *Ledger) RingsOver(universe TokenSet) []RingRecord {
	var out []RingRecord
	for _, r := range l.rings {
		if !r.Tokens.Disjoint(universe) {
			out = append(out, r)
		}
	}
	return out
}
