package chain

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewTokenSetSortsAndDedups(t *testing.T) {
	s := NewTokenSet(5, 3, 5, 1, 3, 9)
	want := TokenSet{1, 3, 5, 9}
	if !s.Equal(want) {
		t.Fatalf("got %v, want %v", s, want)
	}
	if !s.IsSorted() {
		t.Fatalf("invariant broken: %v", s)
	}
}

func TestTokenSetContains(t *testing.T) {
	s := NewTokenSet(2, 4, 6, 8)
	for _, id := range []TokenID{2, 4, 6, 8} {
		if !s.Contains(id) {
			t.Errorf("Contains(%v) = false, want true", id)
		}
	}
	for _, id := range []TokenID{1, 3, 5, 7, 9, -1, 100} {
		if s.Contains(id) {
			t.Errorf("Contains(%v) = true, want false", id)
		}
	}
	var empty TokenSet
	if empty.Contains(0) {
		t.Error("empty set should contain nothing")
	}
}

func TestTokenSetUnion(t *testing.T) {
	a := NewTokenSet(1, 3, 5)
	b := NewTokenSet(2, 3, 6)
	got := a.Union(b)
	want := TokenSet{1, 2, 3, 5, 6}
	if !got.Equal(want) {
		t.Fatalf("Union = %v, want %v", got, want)
	}
	if got := a.Union(nil); !got.Equal(a) {
		t.Fatalf("Union(nil) = %v, want %v", got, a)
	}
}

func TestTokenSetIntersect(t *testing.T) {
	a := NewTokenSet(1, 2, 3, 4)
	b := NewTokenSet(3, 4, 5)
	if got := a.Intersect(b); !got.Equal(TokenSet{3, 4}) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.Intersect(nil); len(got) != 0 {
		t.Fatalf("Intersect(nil) = %v, want empty", got)
	}
}

func TestTokenSetMinus(t *testing.T) {
	a := NewTokenSet(1, 2, 3, 4, 5)
	b := NewTokenSet(2, 4)
	if got := a.Minus(b); !got.Equal(TokenSet{1, 3, 5}) {
		t.Fatalf("Minus = %v", got)
	}
	if got := a.Minus(a); len(got) != 0 {
		t.Fatalf("Minus(self) = %v, want empty", got)
	}
}

func TestTokenSetAddRemove(t *testing.T) {
	s := NewTokenSet(1, 3)
	s2 := s.Add(2)
	if !s2.Equal(TokenSet{1, 2, 3}) {
		t.Fatalf("Add = %v", s2)
	}
	if !s.Equal(TokenSet{1, 3}) {
		t.Fatalf("Add mutated receiver: %v", s)
	}
	if got := s2.Add(2); !got.Equal(s2) {
		t.Fatalf("Add existing = %v", got)
	}
	if got := s2.Remove(2); !got.Equal(s) {
		t.Fatalf("Remove = %v", got)
	}
	if got := s2.Remove(99); !got.Equal(s2) {
		t.Fatalf("Remove missing = %v", got)
	}
	if got := s.Add(9); !got.Equal(TokenSet{1, 3, 9}) {
		t.Fatalf("Add at end = %v", got)
	}
}

func TestTokenSetSubsetDisjoint(t *testing.T) {
	a := NewTokenSet(2, 4)
	b := NewTokenSet(1, 2, 3, 4)
	c := NewTokenSet(5, 6)
	if !a.SubsetOf(b) {
		t.Error("a should be subset of b")
	}
	if b.SubsetOf(a) {
		t.Error("b should not be subset of a")
	}
	if !TokenSet(nil).SubsetOf(a) {
		t.Error("empty set is subset of everything")
	}
	if !a.Disjoint(c) {
		t.Error("a and c should be disjoint")
	}
	if a.Disjoint(b) {
		t.Error("a and b overlap")
	}
}

func randomTokenSet(r *rand.Rand, maxLen, maxVal int) TokenSet {
	n := r.Intn(maxLen + 1)
	ids := make([]TokenID, n)
	for i := range ids {
		ids[i] = TokenID(r.Intn(maxVal))
	}
	return NewTokenSet(ids...)
}

// Property: union and minus satisfy (a ∪ b) \ b == a \ b for all sets.
func TestTokenSetAlgebraProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed ^ r.Int63()))
		a := randomTokenSet(rr, 20, 30)
		b := randomTokenSet(rr, 20, 30)
		u := a.Union(b)
		if !u.IsSorted() {
			return false
		}
		if !a.SubsetOf(u) || !b.SubsetOf(u) {
			return false
		}
		if !u.Minus(b).Equal(a.Minus(b)) {
			return false
		}
		inter := a.Intersect(b)
		if !inter.SubsetOf(a) || !inter.SubsetOf(b) {
			return false
		}
		// |a| + |b| == |a ∪ b| + |a ∩ b| (inclusion–exclusion).
		return len(a)+len(b) == len(u)+len(inter)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Disjoint(a,b) iff Intersect(a,b) is empty.
func TestTokenSetDisjointMatchesIntersect(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a := randomTokenSet(rr, 15, 20)
		b := randomTokenSet(rr, 15, 20)
		return a.Disjoint(b) == (len(a.Intersect(b)) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
