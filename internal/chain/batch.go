package chain

import (
	"errors"
	"fmt"
)

// Batch is one TokenMagic partition of the chain: a contiguous run of blocks
// whose token count first reaches the system parameter λ. Mixins for a token
// are selected only within the batch the token was generated in, which keeps
// the related-RS set of every ring bounded by the batch's token count
// (Section 4 of the paper).
type Batch struct {
	Index      int
	FirstBlock BlockID
	LastBlock  BlockID
	Tokens     TokenSet
}

// BatchList is the full, disjoint, sequential partition of a ledger's blocks.
type BatchList struct {
	Lambda  int
	batches []Batch
	// byToken[t] = index of batch containing token t.
	byToken []int
}

// ErrBadLambda is returned when the batch size parameter is not positive.
var ErrBadLambda = errors.New("chain: batch parameter λ must be positive")

// BuildBatches partitions the ledger's current state; it pins one view so
// the partition is internally consistent under concurrent mutation.
func BuildBatches(l *Ledger, lambda int) (*BatchList, error) {
	return BuildBatchesView(l.View(), lambda)
}

// BuildBatchesView scans blocks in ascending order and closes a batch as soon
// as it holds at least λ tokens, exactly as Section 4 describes. The final
// batch may hold fewer than λ tokens; Liveness accounting treats its |T| as
// λ+λ'−1 (see tokenmagic.Liveness).
func BuildBatchesView(v *View, lambda int) (*BatchList, error) {
	if lambda <= 0 {
		return nil, ErrBadLambda
	}
	bl := &BatchList{Lambda: lambda, byToken: make([]int, v.NumTokens())}
	cur := Batch{Index: 0, FirstBlock: 0}
	count := 0
	flush := func(last BlockID) {
		cur.LastBlock = last
		bl.batches = append(bl.batches, cur)
		cur = Batch{Index: len(bl.batches), FirstBlock: last + 1}
		count = 0
	}
	for b := 0; b < v.NumBlocks(); b++ {
		blockTokens := v.TokensInBlocks(BlockID(b), BlockID(b))
		for _, t := range blockTokens {
			bl.byToken[t] = cur.Index
		}
		cur.Tokens = cur.Tokens.Union(blockTokens)
		count += len(blockTokens)
		if count >= lambda {
			flush(BlockID(b))
		}
	}
	if count > 0 || len(bl.batches) == 0 {
		cur.LastBlock = BlockID(v.NumBlocks() - 1)
		bl.batches = append(bl.batches, cur)
	}
	return bl, nil
}

// Len returns the number of batches.
func (bl *BatchList) Len() int { return len(bl.batches) }

// Batch returns the i-th batch.
func (bl *BatchList) Batch(i int) (Batch, error) {
	if i < 0 || i >= len(bl.batches) {
		return Batch{}, fmt.Errorf("chain: batch %d out of range [0,%d)", i, len(bl.batches))
	}
	return bl.batches[i], nil
}

// BatchOf returns the batch containing the given token. This is the mixin
// universe lookup of Algorithm 1 line 1.
func (bl *BatchList) BatchOf(t TokenID) (Batch, error) {
	if t < 0 || int(t) >= len(bl.byToken) {
		return Batch{}, fmt.Errorf("%w: %v", ErrUnknownToken, t)
	}
	return bl.batches[bl.byToken[t]], nil
}

// Universe returns the mixin universe for a token: all tokens in its batch.
func (bl *BatchList) Universe(t TokenID) (TokenSet, error) {
	b, err := bl.BatchOf(t)
	if err != nil {
		return nil, err
	}
	return b.Tokens, nil
}
