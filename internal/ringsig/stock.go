package ringsig

// The stock-curve implementation: sign and verify written directly against
// the generic elliptic.Curve API, exactly as the package did before the
// kernel layer existed — one ScalarBaseMult, three ScalarMult and two Add
// per ring member, with a big.Int ModSqrt hash-to-point and no caches.
//
// It stays for three jobs:
//
//   - differential testing: the kernel path must produce byte-identical
//     signatures (same rng stream) and identical accept/reject decisions,
//     which kernel_test.go and the fuzz targets assert against this code;
//   - the benchmark baseline: BENCH_ringsig.json's speedups are measured
//     against StockVerify/StockSign;
//   - runtime identification fallback: VerifyBatch confirms kernel rejects
//     here, so a reject can never be an artefact of the optimised path.
//
// The only definitional deltas from the pre-kernel code are shared with the
// main path: the hash-to-point domain tag is v2 and the square root is
// canonicalised to the even y (stockHashToPoint below computes it the old
// ModSqrt way and must agree bit-for-bit with the compressed-point fast
// path in hpcache.go).

import (
	"crypto/sha256"
	"io"
	"math/big"
)

// StockSign is Sign on stock curve ops. Given the same rng stream it must
// produce a byte-identical signature to Sign.
func StockSign(rng io.Reader, sk *PrivateKey, ring []Point, signerIdx int, msg []byte) (*Signature, error) {
	n := len(ring)
	if n < 2 {
		return nil, ErrSmallRing
	}
	if signerIdx < 0 || signerIdx >= n || !ring[signerIdx].Equal(sk.Public) {
		return nil, ErrNotInRing
	}
	for _, p := range ring {
		if p.IsZero() || !Curve.IsOnCurve(p.X, p.Y) {
			return nil, ErrBadRingKeys
		}
	}
	order := Curve.Params().N
	image := stockKeyImage(sk)

	alpha, err := randScalar(rng)
	if err != nil {
		return nil, err
	}
	s := make([]*big.Int, n)
	c := make([]*big.Int, n)

	// α is a secret nonce: encode it fixed-width so the byte length handed
	// to the curve ops never depends on its leading zero bits. The point
	// results are identical (same scalar value), which the differential
	// tests in cttime_fix_test.go pin down byte-for-byte.
	var ab [32]byte
	alpha.FillBytes(ab[:])
	agx, agy := Curve.ScalarBaseMult(ab[:])
	hpPi := stockHashToPoint(ring[signerIdx])
	ahx, ahy := Curve.ScalarMult(hpPi.X, hpPi.Y, ab[:])
	c[(signerIdx+1)%n] = challenge(msg, Point{agx, agy}, Point{ahx, ahy})

	for off := 1; off < n; off++ {
		i := (signerIdx + off) % n
		s[i], err = randResponse(rng)
		if err != nil {
			return nil, err
		}
		c[(i+1)%n] = stockRingStep(msg, ring[i], image, s[i], c[i])
	}

	sPi := new(big.Int).Mul(c[signerIdx], sk.D)
	sPi.Sub(alpha, sPi)
	sPi.Mod(sPi, order)
	s[signerIdx] = sPi

	return &Signature{C0: c[0], S: s, Image: image}, nil
}

// StockVerify is Verify on stock curve ops, with the pre-kernel check
// structure (lazy in-loop scalar range checks, no caches).
func StockVerify(sig *Signature, ring []Point, msg []byte) error {
	n := len(ring)
	if sig == nil || n < 2 || len(sig.S) != n || sig.C0 == nil {
		return ErrInvalid
	}
	if sig.Image.IsZero() || !Curve.IsOnCurve(sig.Image.X, sig.Image.Y) {
		return ErrInvalid
	}
	for _, p := range ring {
		if p.IsZero() || !Curve.IsOnCurve(p.X, p.Y) {
			return ErrBadRingKeys
		}
	}
	order := Curve.Params().N
	c := new(big.Int).Set(sig.C0)
	for i := 0; i < n; i++ {
		if sig.S[i] == nil || sig.S[i].Sign() < 0 || sig.S[i].Cmp(order) >= 0 {
			return ErrInvalid
		}
		c = stockRingStep(msg, ring[i], sig.Image, sig.S[i], c)
	}
	if c.Cmp(sig.C0) != 0 {
		return ErrInvalid
	}
	return nil
}

// stockKeyImage is KeyImage on the stock ops (identical result; kept so the
// stock path is self-contained).
func stockKeyImage(k *PrivateKey) Point {
	hp := stockHashToPoint(k.Public)
	var kb [32]byte
	k.D.FillBytes(kb[:])
	x, y := Curve.ScalarMult(hp.X, hp.Y, kb[:])
	return Point{X: x, Y: y}
}

// stockRingStep computes one challenge-chain step with unfused stock ops.
// Scalars are reduced mod N and encoded fixed-width: c may exceed the group
// order here (a tampered C0 reaches the first step unreduced), and for
// 0 ≤ k the curve computes k·P = (k mod N)·P anyway, so the reduction
// changes no point and keeps FillBytes from panicking on oversized input.
func stockRingStep(msg []byte, pub, image Point, s, c *big.Int) *big.Int {
	var sb, cb [32]byte
	reduceScalar(s).FillBytes(sb[:])
	reduceScalar(c).FillBytes(cb[:])
	sgx, sgy := Curve.ScalarBaseMult(sb[:])
	cpx, cpy := Curve.ScalarMult(pub.X, pub.Y, cb[:])
	lx, ly := Curve.Add(sgx, sgy, cpx, cpy)

	hp := stockHashToPoint(pub)
	shx, shy := Curve.ScalarMult(hp.X, hp.Y, sb[:])
	cix, ciy := Curve.ScalarMult(image.X, image.Y, cb[:])
	rx, ry := Curve.Add(shx, shy, cix, ciy)

	return challenge(msg, Point{lx, ly}, Point{rx, ry})
}

// stockHashToPoint is the reference hash-to-point: the same iterated
// hash-and-increment as hashToPoint, with the square root computed by
// big.Int ModSqrt and canonicalised to the even root. Must agree
// bit-for-bit with the compressed-point fast path.
func stockHashToPoint(p Point) Point {
	seed := sha256.Sum256(append([]byte(hpDomain), p.Bytes()...))
	x := new(big.Int).SetBytes(seed[:])
	x.Mod(x, curveP)
	one := big.NewInt(1)
	for i := 0; i < 1000; i++ {
		if y := evenSqrtRHS(x); y != nil {
			return Point{X: new(big.Int).Set(x), Y: y}
		}
		x.Add(x, one)
		x.Mod(x, curveP)
	}
	panic("ringsig: hash-to-point failed after 1000 attempts")
}

// evenSqrtRHS returns the even square root of x³ − 3x + b (mod p) when the
// value is a quadratic residue, nil otherwise.
func evenSqrtRHS(x *big.Int) *big.Int {
	y2 := new(big.Int).Mul(x, x)
	y2.Mul(y2, x)
	threeX := new(big.Int).Lsh(x, 1)
	threeX.Add(threeX, x)
	y2.Sub(y2, threeX)
	y2.Add(y2, curveB)
	y2.Mod(y2, curveP)
	y := new(big.Int).ModSqrt(y2, curveP)
	if y == nil {
		return nil
	}
	// Verify (ModSqrt can misfire only if y2 was not a residue, in which
	// case it returns nil; this is belt and braces).
	check := new(big.Int).Mul(y, y)
	check.Mod(check, curveP)
	if check.Cmp(y2) != 0 {
		return nil
	}
	if y.Bit(0) == 1 {
		y.Sub(curveP, y)
	}
	return y
}

// stockLayerPoints is the pre-kernel MLSAG cell computation, the
// differential baseline for layerPoints.
func stockLayerPoints(pub, image Point, s, c *big.Int) (Point, Point) {
	var sb, cb [32]byte
	reduceScalar(s).FillBytes(sb[:])
	reduceScalar(c).FillBytes(cb[:])
	sgx, sgy := Curve.ScalarBaseMult(sb[:])
	cpx, cpy := Curve.ScalarMult(pub.X, pub.Y, cb[:])
	lx, ly := Curve.Add(sgx, sgy, cpx, cpy)

	hp := stockHashToPoint(pub)
	shx, shy := Curve.ScalarMult(hp.X, hp.Y, sb[:])
	cix, ciy := Curve.ScalarMult(image.X, image.Y, cb[:])
	rx, ry := Curve.Add(shx, shy, cix, ciy)
	return Point{lx, ly}, Point{rx, ry}
}
