package ringsig

// Double-scalar multiplication kernels for the verification challenge
// chain. Each ring member costs two point pairs:
//
//	L = s·G  + c·P   (fixed base + variable point)
//	R = s·Hp + c·I   (two variable points)
//
// mulPairBase and mulPair are the only multiplication entry points the
// verify path uses. On platforms whose P-256 implementation exposes the
// fused CombinedMult (amd64/arm64 assembly backends), L costs one fused
// call — the same price as a single ScalarMult — instead of
// ScalarBaseMult + ScalarMult + Add. Elsewhere both pairs dispatch to the
// Strauss/comb engine in jacobian.go, which beats the generic constant-time
// ladder the stock fallback would run roughly threefold.
//
// Scalars are encoded fixed-width via FillBytes: big.Int.Bytes() drops
// leading zero bytes, and while the stock API tolerates short scalars, the
// fixed 32-byte form is what the scheme specifies and what keeps encode
// length independent of scalar value. The kernels are variable-time either
// way (see DESIGN.md "Verification kernels" for the constant-time caveat);
// they must only ever see public verification inputs.

import "math/big"

// combinedMulter is the fused double-scalar interface the assembly-backed
// P-256 implementation exports; discovered by type assertion at init so the
// package keeps building against stock libraries that lack it.
type combinedMulter interface {
	CombinedMult(bigX, bigY *big.Int, baseScalar, scalar []byte) (x, y *big.Int)
}

var p256Combined, p256HasCombined = Curve.(combinedMulter)

// mulPairBase returns s·G + c·P for public verification scalars. The
// underlying ladders branch on scalar digits, so secret scalars must never
// reach this entry point (cttime enforces the annotation).
//
//tmlint:hotpath
//tmlint:vartime
func mulPairBase(s, c *big.Int, pub Point) Point {
	if p256HasCombined {
		var sb, cb [32]byte
		s.FillBytes(sb[:])
		c.FillBytes(cb[:])
		x, y := p256Combined.CombinedMult(pub.X, pub.Y, sb[:], cb[:])
		return Point{X: x, Y: y}
	}
	//lint:ignore hotalloc fallback Strauss/comb engine allocates big.Int temporaries by design; dispatched only on platforms without an assembly fused multiplier
	return strausBaseVar(s, c, pub)
}

// mulPair returns a·Q + b·R for public verification scalars. Same
// variable-time contract as mulPairBase.
//
//tmlint:hotpath
//tmlint:vartime
func mulPair(a *big.Int, q Point, b *big.Int, r Point) Point {
	if p256HasCombined {
		var ab, bb [32]byte
		a.FillBytes(ab[:])
		b.FillBytes(bb[:])
		qx, qy := Curve.ScalarMult(q.X, q.Y, ab[:])
		rx, ry := Curve.ScalarMult(r.X, r.Y, bb[:])
		x, y := Curve.Add(qx, qy, rx, ry)
		return Point{X: x, Y: y}
	}
	//lint:ignore hotalloc fallback Strauss engine allocates big.Int temporaries by design; dispatched only on platforms without an assembly fused multiplier
	return strausVarVar(a, q, b, r)
}

// ringStep computes c_{i+1} = H(msg, s·G + c·P, s·Hp(P) + c·I) through the
// kernels, resolving Hp(P) via the memo when one is supplied.
func ringStep(msg []byte, pub, image Point, s, c *big.Int, hp *HpCache) *big.Int {
	l := mulPairBase(s, c, pub)
	r := mulPair(s, hp.hashPoint(pub), c, image)
	return challenge(msg, l, r)
}
