package ringsig

import (
	"crypto/rand"
	"encoding/json"
	"testing"
)

func TestPointJSONRoundTrip(t *testing.T) {
	k, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(k.Public)
	if err != nil {
		t.Fatal(err)
	}
	var got Point
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(k.Public) {
		t.Fatal("point round trip lost data")
	}
	// Zero point round trips.
	var zero Point
	data, err = json.Marshal(zero)
	if err != nil {
		t.Fatal(err)
	}
	var gotZero Point
	if err := json.Unmarshal(data, &gotZero); err != nil {
		t.Fatal(err)
	}
	if !gotZero.IsZero() {
		t.Fatal("zero point round trip")
	}
}

func TestPointJSONRejectsOffCurve(t *testing.T) {
	var p Point
	if err := json.Unmarshal([]byte(`{"x":"1","y":"1"}`), &p); err == nil {
		t.Fatal("off-curve point must be rejected at decode")
	}
	if err := json.Unmarshal([]byte(`{"x":"zz","y":"1"}`), &p); err == nil {
		t.Fatal("bad hex must be rejected")
	}
}

func TestSignatureJSONRoundTrip(t *testing.T) {
	keys, ring := genRing(t, 4)
	msg := []byte("wire")
	sig, err := Sign(rand.Reader, keys[1], ring, 1, msg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(sig)
	if err != nil {
		t.Fatal(err)
	}
	var got Signature
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	// The decoded signature must still verify.
	if err := Verify(&got, ring, msg); err != nil {
		t.Fatalf("decoded signature fails verification: %v", err)
	}
	if !Linked(sig, &got) {
		t.Fatal("round trip must preserve the key image")
	}
}

func TestSignatureJSONErrors(t *testing.T) {
	var sig Signature
	if err := json.Unmarshal([]byte(`{"c0":"zz","s":[],"image":{"x":"","y":""}}`), &sig); err == nil {
		t.Fatal("bad c0 must be rejected")
	}
	if err := json.Unmarshal([]byte(`{"c0":"1","s":["qq"],"image":{"x":"","y":""}}`), &sig); err == nil {
		t.Fatal("bad scalar must be rejected")
	}
	var nilSig *Signature
	data, err := json.Marshal(nilSig)
	if err != nil || string(data) != "null" {
		t.Fatalf("nil signature marshal = %s, %v", data, err)
	}
}
