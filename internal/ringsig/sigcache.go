package ringsig

// Verified-transcript cache. A node verifies every signature at least
// twice: once at submission admission and again when the containing block
// is validated at mine time. The transcript key binds every byte the
// decision depends on — message, ring, responses, initial challenge, key
// image — so a hit proves this exact verification already succeeded and the
// whole challenge chain can be skipped. Only successful verifications are
// recorded; a reject is never cached (rejects are rare, and callers may
// retry with a corrected ring).

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
)

// SigCache remembers transcripts that verified, bounded by a two-generation
// rotation: inserts land in the current generation, lookups consult both,
// and when the current generation fills, it becomes the previous one and a
// fresh map starts. Eviction is therefore approximately FIFO at generation
// granularity with memory bounded by ~capacity entries, the scheme Bitcoin
// Core's signature cache popularised.
type SigCache struct {
	mu   sync.Mutex
	half int
	cur  map[[32]byte]struct{}
	prev map[[32]byte]struct{}
}

// NewSigCache returns a cache holding about capacity verified transcripts.
func NewSigCache(capacity int) *SigCache {
	if capacity < 2 {
		capacity = 2
	}
	return &SigCache{
		half: capacity / 2,
		cur:  make(map[[32]byte]struct{}, capacity/2),
	}
}

// Seen reports whether the transcript key was recorded by a previous
// successful verification.
func (c *SigCache) Seen(key [32]byte) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.cur[key]; ok {
		return true
	}
	_, ok := c.prev[key]
	return ok
}

// Record remembers a transcript that verified successfully.
func (c *SigCache) Record(key [32]byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.cur) >= c.half {
		c.prev = c.cur
		c.cur = make(map[[32]byte]struct{}, c.half)
	}
	c.cur[key] = struct{}{}
}

// Len reports the number of remembered transcripts across both generations.
func (c *SigCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cur) + len(c.prev)
}

// transcriptKey hashes the full verification transcript. Every scalar and
// coordinate uses a fixed 32-byte encoding and the two variable-length
// dimensions (message bytes, ring size) are length-framed, so distinct
// transcripts cannot collide by concatenation — no field's byte width
// depends on its value. The caller guarantees structural validity before
// the cache is consulted: verifyOne rejects out-of-range C0 (and nil or
// oversized fields) before calling here, so FillBytes(32) cannot panic.
// v1 encoded C0 variable-width with a length frame; v2 makes it fixed-width
// like every other scalar, and bumps the domain tag so v1 and v2 keys live
// in disjoint spaces (cache-internal only — keys never leave the process).
func transcriptKey(sig *Signature, ring []Point, msg []byte) [32]byte {
	h := sha256.New()
	var n8 [8]byte
	var w [32]byte
	hashWrite(h, []byte("tokenmagic/sigcache/v2"))
	binary.LittleEndian.PutUint64(n8[:], uint64(len(msg)))
	hashWrite(h, n8[:], msg)
	binary.LittleEndian.PutUint64(n8[:], uint64(len(ring)))
	hashWrite(h, n8[:])
	for _, p := range ring {
		p.X.FillBytes(w[:])
		hashWrite(h, w[:])
		p.Y.FillBytes(w[:])
		hashWrite(h, w[:])
	}
	sig.C0.FillBytes(w[:])
	hashWrite(h, w[:])
	for _, s := range sig.S {
		s.FillBytes(w[:])
		hashWrite(h, w[:])
	}
	sig.Image.X.FillBytes(w[:])
	hashWrite(h, w[:])
	sig.Image.Y.FillBytes(w[:])
	hashWrite(h, w[:])
	var key [32]byte
	h.Sum(key[:0])
	return key
}
