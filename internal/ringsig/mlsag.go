package ringsig

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// This file implements an MLSAG-style multilayer linkable ring signature:
// one signature proving, for a matrix of public keys with rows = ring
// positions and columns = transaction inputs, that the signer owns every
// key in one (secret) row — with one key image per column for double-spend
// detection. This is the construction multi-input transactions use in
// production systems; the single-input Sign/Verify above is the special
// case of a one-column matrix.

// MultiSignature is an MLSAG signature over an n×m key matrix.
type MultiSignature struct {
	C0     *big.Int
	S      [][]*big.Int // S[i][j]: response for ring position i, input j
	Images []Point      // one key image per input column
}

// Errors specific to the multilayer scheme.
var (
	ErrBadMatrix    = errors.New("ringsig: key matrix rows must be non-empty and uniform")
	ErrBadKeyCount  = errors.New("ringsig: need one private key per input column")
	ErrKeyMismatch  = errors.New("ringsig: private keys do not match the signer row")
	ErrInvalidMulti = errors.New("ringsig: invalid multilayer signature")
)

// MultiSign signs msg proving ownership of every key in row signerIdx of
// the matrix. matrix[i][j] is the j-th input's candidate key at ring
// position i; keys[j] must be the private key of matrix[signerIdx][j].
func MultiSign(rng io.Reader, keys []*PrivateKey, matrix [][]Point, signerIdx int, msg []byte) (*MultiSignature, error) {
	n := len(matrix)
	if n < 2 {
		return nil, ErrSmallRing
	}
	m := len(matrix[0])
	if m == 0 {
		return nil, ErrBadMatrix
	}
	for _, row := range matrix {
		if len(row) != m {
			return nil, ErrBadMatrix
		}
		for _, p := range row {
			if p.IsZero() || !Curve.IsOnCurve(p.X, p.Y) {
				return nil, ErrBadRingKeys
			}
		}
	}
	if len(keys) != m {
		return nil, ErrBadKeyCount
	}
	if signerIdx < 0 || signerIdx >= n {
		return nil, ErrNotInRing
	}
	for j, k := range keys {
		if !matrix[signerIdx][j].Equal(k.Public) {
			return nil, ErrKeyMismatch
		}
	}
	order := Curve.Params().N

	images := make([]Point, m)
	for j, k := range keys {
		images[j] = k.KeyImage()
	}

	alphas := make([]*big.Int, m)
	s := make([][]*big.Int, n)
	for i := range s {
		s[i] = make([]*big.Int, m)
	}
	c := make([]*big.Int, n)

	// Seed the challenge chain at the signer row with fresh nonces. The
	// nonces are secret, so these multiplications stay on the stock
	// constant-time ops with fixed-width scalar encoding.
	var seedParts []Point
	for j := range keys {
		a, err := randScalar(rng)
		if err != nil {
			return nil, err
		}
		alphas[j] = a
		var ab [32]byte
		a.FillBytes(ab[:])
		agx, agy := Curve.ScalarBaseMult(ab[:])
		hp := hashToPoint(matrix[signerIdx][j])
		ahx, ahy := Curve.ScalarMult(hp.X, hp.Y, ab[:])
		seedParts = append(seedParts, Point{agx, agy}, Point{ahx, ahy})
	}
	c[(signerIdx+1)%n] = multiChallenge(msg, seedParts)

	for off := 1; off < n; off++ {
		i := (signerIdx + off) % n
		var parts []Point
		for j := 0; j < m; j++ {
			var err error
			s[i][j], err = randResponse(rng)
			if err != nil {
				return nil, err
			}
			l, r := layerPoints(matrix[i][j], images[j], s[i][j], c[i])
			parts = append(parts, l, r)
		}
		c[(i+1)%n] = multiChallenge(msg, parts)
	}

	// Close every layer: s_π,j = α_j − c_π·x_j.
	for j, k := range keys {
		sj := new(big.Int).Mul(c[signerIdx], k.D)
		sj.Sub(alphas[j], sj)
		sj.Mod(sj, order)
		s[signerIdx][j] = sj
	}
	return &MultiSignature{C0: c[0], S: s, Images: images}, nil
}

// MultiVerify checks a multilayer signature against the key matrix.
func MultiVerify(sig *MultiSignature, matrix [][]Point, msg []byte) error {
	if sig == nil || sig.C0 == nil {
		return ErrInvalidMulti
	}
	n := len(matrix)
	if n < 2 || len(sig.S) != n {
		return ErrInvalidMulti
	}
	m := len(matrix[0])
	if m == 0 || len(sig.Images) != m {
		return ErrInvalidMulti
	}
	order := Curve.Params().N
	// An out-of-range C0 can never equal the reduced final challenge, so
	// rejecting it up front changes no decision and lets the kernel chain
	// assume fixed-width 32-byte challenge operands.
	if sig.C0.Sign() < 0 || sig.C0.Cmp(order) >= 0 {
		return ErrInvalidMulti
	}
	for _, img := range sig.Images {
		if img.IsZero() || !Curve.IsOnCurve(img.X, img.Y) {
			return ErrInvalidMulti
		}
	}
	for i, row := range matrix {
		if len(row) != m || len(sig.S[i]) != m {
			return ErrInvalidMulti
		}
		for j, p := range row {
			if p.IsZero() || !Curve.IsOnCurve(p.X, p.Y) {
				return ErrBadRingKeys
			}
			sv := sig.S[i][j]
			if sv == nil || sv.Sign() < 0 || sv.Cmp(order) >= 0 {
				return ErrInvalidMulti
			}
		}
	}
	c := new(big.Int).Set(sig.C0)
	for i := 0; i < n; i++ {
		var parts []Point
		for j := 0; j < m; j++ {
			l, r := layerPoints(matrix[i][j], sig.Images[j], sig.S[i][j], c)
			parts = append(parts, l, r)
		}
		c = multiChallenge(msg, parts)
	}
	if c.Cmp(sig.C0) != 0 {
		return ErrInvalidMulti
	}
	return nil
}

// LinkedMulti reports whether two multilayer signatures share any key image
// — i.e. whether any input is double-spent across them.
func LinkedMulti(a, b *MultiSignature) bool {
	if a == nil || b == nil {
		return false
	}
	for _, ia := range a.Images {
		for _, ib := range b.Images {
			if ia.Equal(ib) {
				return true
			}
		}
	}
	return false
}

// layerPoints computes (s·G + c·P, s·Hp(P) + c·I) for one matrix cell
// through the verification kernels. s and c are public here: MultiSign only
// calls it for decoy rows, and the secret-nonce seed row above uses the
// stock constant-time ops directly.
func layerPoints(pub, image Point, s, c *big.Int) (Point, Point) {
	l := mulPairBase(s, c, pub)
	r := mulPair(s, hashToPoint(pub), c, image)
	return l, r
}

// multiChallenge hashes a transcript of points into a scalar.
//
// The v2 transcript is length-unambiguous: v1 concatenated the raw message
// directly before the 65-byte point parts, so for a fixed total byte stream
// the (msg, parts) split was not unique — a message ending in a valid point
// encoding aliased against a transcript with one more column. v2 frames the
// message length and the part count, which pins the split for any m. The
// domain tag is bumped so old and new transcripts can never collide with
// each other; MLSAG signatures are created and verified by the same binary
// (no persisted vectors), so the bump has no wire impact.
func multiChallenge(msg []byte, parts []Point) *big.Int {
	h := sha256.New()
	var frame [16]byte
	binary.LittleEndian.PutUint64(frame[:8], uint64(len(msg)))
	binary.LittleEndian.PutUint64(frame[8:], uint64(len(parts)))
	hashWrite(h, []byte("tokenmagic/mlsag/v2"), frame[:], msg)
	for _, p := range parts {
		hashWrite(h, p.Bytes())
	}
	d := new(big.Int).SetBytes(h.Sum(nil))
	return d.Mod(d, Curve.Params().N)
}

// String renders a short digest for logs.
func (s *MultiSignature) String() string {
	if s == nil {
		return "MultiSignature(nil)"
	}
	return fmt.Sprintf("MultiSignature(rows=%d, inputs=%d)", len(s.S), len(s.Images))
}
