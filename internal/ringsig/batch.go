package ringsig

// Engine + VerifyBatch: the batch verification front-end over the kernel
// layer. An Engine owns the two caches that amortise repeated work — the
// hash-to-point memo and the verified-transcript cache — and fans batches
// across a bounded worker pool using the same atomic-cursor pattern as the
// candidate executor in internal/tokenmagic.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Engine verifies ring signatures through the scalar-mult kernels with
// optional cross-call amortisation. The zero value is ready to use and
// caches nothing; package-level Verify routes through it. Fields are
// configuration, set before first use and not mutated afterwards; the
// caches themselves are safe for concurrent use.
type Engine struct {
	// Hp memoises hash-to-point across calls. nil: VerifyBatch installs a
	// fresh memo per batch (single Verify calls compute directly).
	Hp *HpCache
	// Seen remembers transcripts that verified, so re-validating a
	// signature the node already admitted (block validation at mine time)
	// skips the challenge chain. nil: every call walks the chain.
	Seen *SigCache
	// Workers bounds the VerifyBatch pool; 0 means GOMAXPROCS.
	Workers int
}

// VerifyRequest is one signature check in a batch.
type VerifyRequest struct {
	Sig  *Signature
	Ring []Point
	Msg  []byte
}

// BatchResult reports a batch verification.
type BatchResult struct {
	// Errs has one entry per request, nil for signatures that verified.
	Errs []error
	// FirstFailure is the lowest failing index, -1 when all verified.
	FirstFailure int
	// CacheHits counts signatures settled by the transcript cache.
	CacheHits int
	// Rechecked counts kernel rejects confirmed by the stock-curve
	// fallback path.
	Rechecked int
}

// OK reports whether every signature in the batch verified.
func (r BatchResult) OK() bool { return r.FirstFailure == -1 }

// errUndecided marks slots a cancelled batch never reached.
var errUndecided = errors.New("ringsig: batch verification cancelled")

// Verify checks one signature through the engine's caches.
func (e *Engine) Verify(sig *Signature, ring []Point, msg []byte) error {
	err, _ := e.verifyOne(sig, ring, msg, e.Hp)
	return err
}

// VerifyBatch checks a batch of ring signatures over a bounded worker pool.
// Requests are independent, so workers claim indices off an atomic cursor
// (the executor pattern from internal/tokenmagic) and record per-index
// results; the merged BatchResult is identical at every worker count.
//
// Failure handling: when the kernel path rejects a signature, the batch
// falls back to per-signature verification on the stock curve ops for that
// index — the identification step. The stock decision is authoritative, so
// a reject can never be an artefact of the optimised path, and the first
// confirmed failure's index is reported for the caller to attribute blame.
//
// Cancellation marks unvisited requests with ctx.Err(); already-decided
// indices keep their verdicts.
func (e *Engine) VerifyBatch(ctx context.Context, reqs []VerifyRequest) BatchResult {
	res := BatchResult{Errs: make([]error, len(reqs)), FirstFailure: -1}
	if len(reqs) == 0 {
		return res
	}
	hp := e.Hp
	if hp == nil {
		// Memo lifetime = this batch: rings drawn from one ledger overlap,
		// so even a batch-scoped memo removes most hash-to-point work.
		hp = NewHpCache()
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}

	var hits, rechecked atomic.Int64
	check := func(i int) {
		err, hit := e.verifyOne(reqs[i].Sig, reqs[i].Ring, reqs[i].Msg, hp)
		if hit {
			hits.Add(1)
		}
		if err != nil {
			// Identification fallback: confirm on the stock path.
			err = StockVerify(reqs[i].Sig, reqs[i].Ring, reqs[i].Msg)
			rechecked.Add(1)
		}
		res.Errs[i] = err
	}

	if workers <= 1 {
		for i := range reqs {
			if ctx.Err() != nil {
				res.Errs[i] = ctx.Err()
				continue
			}
			check(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for i := range res.Errs {
			res.Errs[i] = errUndecided
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(reqs) || ctx.Err() != nil {
						return
					}
					check(i)
				}
			}()
		}
		wg.Wait()
		for i, err := range res.Errs {
			if err == errUndecided { // cancelled before this slot was claimed
				res.Errs[i] = ctx.Err()
			}
		}
	}

	res.CacheHits = int(hits.Load())
	res.Rechecked = int(rechecked.Load())
	for i, err := range res.Errs {
		if err != nil {
			res.FirstFailure = i
			break
		}
	}
	return res
}

// verifyOne runs the full single-signature check: structural validation in
// the same order (and with the same error identities) as the stock
// implementation, then the transcript cache, then the challenge chain
// through the kernels. Successful chains are recorded in the cache.
func (e *Engine) verifyOne(sig *Signature, ring []Point, msg []byte, hp *HpCache) (err error, cacheHit bool) {
	n := len(ring)
	if sig == nil || n < 2 || len(sig.S) != n || sig.C0 == nil {
		return ErrInvalid, false
	}
	if sig.Image.IsZero() || !Curve.IsOnCurve(sig.Image.X, sig.Image.Y) {
		return ErrInvalid, false
	}
	for _, p := range ring {
		if p.IsZero() || !Curve.IsOnCurve(p.X, p.Y) {
			return ErrBadRingKeys, false
		}
	}
	// The stock path range-checks scalars lazily inside the chain loop and
	// C0 implicitly (an out-of-range C0 can never equal the reduced final
	// challenge). Hoisting both here changes no decision — any bad scalar
	// yields ErrInvalid on both paths — and lets the kernels assume
	// fixed-width 32-byte operands.
	if sig.C0.Sign() < 0 || sig.C0.Cmp(curveN) >= 0 {
		return ErrInvalid, false
	}
	for _, s := range sig.S {
		if s == nil || s.Sign() < 0 || s.Cmp(curveN) >= 0 {
			return ErrInvalid, false
		}
	}

	var key [32]byte
	if e.Seen != nil {
		key = transcriptKey(sig, ring, msg)
		if e.Seen.Seen(key) {
			// Keys bind every byte the decision depends on, so a hit
			// replays a verification that already succeeded.
			return nil, true
		}
	}

	c := sig.C0
	for i := 0; i < n; i++ {
		c = ringStep(msg, ring[i], sig.Image, sig.S[i], c, hp)
	}
	if c.Cmp(sig.C0) != 0 {
		return ErrInvalid, false
	}
	if e.Seen != nil {
		e.Seen.Record(key)
	}
	return nil, false
}

// defaultEngine backs the package-level Verify wrapper: kernels, no caches.
var defaultEngine Engine
