package ringsig

// Hash-to-point memoisation. Hp(P) depends only on the public key bytes,
// and verification workloads resolve the same keys over and over: every
// member of every ring in a batch needs its Hp, rings drawn from one ledger
// overlap heavily, and a node's key registry is known ahead of time. The
// memo turns all but the first resolution of a key into a lock-cheap map
// read.

import (
	"crypto/elliptic"
	"crypto/sha256"
	"math/big"
	"sync"
)

// hpKey is a compressed SEC1 encoding — 33 fixed bytes, comparable, so map
// lookups need no per-call allocation.
type hpKey [33]byte

func makeHpKey(p Point) hpKey {
	var k hpKey
	k[0] = 2 | byte(p.Y.Bit(0))
	p.X.FillBytes(k[1:])
	return k
}

// HpCache memoises hashToPoint by public key bytes. Safe for concurrent
// use. A nil *HpCache is valid and simply computes every request — callers
// thread one through when they want amortisation and pass nil when they
// don't. Lifetime is the owner's choice: VerifyBatch installs a fresh memo
// per batch when the engine doesn't own a longer-lived one; a node owning
// the key registry keeps a process-lifetime cache warmed by Precompute.
// Entries are immutable once stored, so there is no invalidation to manage
// — only growth, bounded by the number of distinct keys the owner feeds it.
type HpCache struct {
	mu sync.RWMutex
	m  map[hpKey]Point
}

// NewHpCache returns an empty memo.
func NewHpCache() *HpCache {
	return &HpCache{m: make(map[hpKey]Point, 64)}
}

// hashPoint returns Hp(p), memoised. The hit path is one RLock-ed map read.
//
//tmlint:hotpath
func (c *HpCache) hashPoint(p Point) Point {
	if c == nil {
		//lint:ignore hotalloc cache-less fallback resolves Hp from scratch; hot callers always thread a memo
		return hashToPoint(p)
	}
	k := makeHpKey(p)
	c.mu.RLock()
	v, ok := c.m[k]
	c.mu.RUnlock()
	if ok {
		return v
	}
	//lint:ignore hotalloc first resolution of a key computes and stores; every later lookup is the allocation-free hit path above
	return c.fill(k, p)
}

func (c *HpCache) fill(k hpKey, p Point) Point {
	v := hashToPoint(p)
	c.mu.Lock()
	c.m[k] = v
	c.mu.Unlock()
	return v
}

// Precompute warms the memo for a known key population (e.g. a node's key
// registry), so later verifications never pay the hash-to-point search.
func (c *HpCache) Precompute(keys []Point) {
	for _, p := range keys {
		if p.IsZero() {
			continue
		}
		c.hashPoint(p)
	}
}

// Len reports the number of memoised keys.
func (c *HpCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// hashToPoint maps a public key to a curve point with unknown discrete log
// relative to G, via iterated hash-and-increment on the x-coordinate. The
// square root runs through elliptic.UnmarshalCompressed, which on
// assembly-backed platforms is several times cheaper than a big.Int
// ModSqrt; the even-y prefix makes it also pick the canonical root (see
// stockHashToPoint for the reference computation the differential tests
// compare against).
func hashToPoint(p Point) Point {
	seed := sha256.Sum256(append([]byte(hpDomain), p.Bytes()...))
	x := new(big.Int).SetBytes(seed[:])
	x.Mod(x, curveP)
	var buf [33]byte
	buf[0] = 2 // request the even root: the canonical choice
	for i := 0; i < 1000; i++ {
		x.FillBytes(buf[1:])
		if px, py := elliptic.UnmarshalCompressed(Curve, buf[:]); px != nil {
			return Point{X: px, Y: py}
		}
		x.Add(x, small(1))
		if x.Cmp(curveP) >= 0 {
			x.Sub(x, curveP)
		}
	}
	// Unreachable in practice: each x has ~1/2 chance of being on curve.
	panic("ringsig: hash-to-point failed after 1000 attempts")
}

// hpDomain tags the hash-to-point transcript. v2: the root choice became
// canonical (always the even y), enabling the compressed-point fast path;
// v1 kept whichever root ModSqrt produced. Nothing persists v1 signatures —
// the scheme's keys, images and signatures all live within one process
// generation — so the tag bump only marks the break explicitly.
const hpDomain = "tokenmagic/hp/v2"
