package ringsig

// Verification-only Jacobian arithmetic over P-256.
//
// The kernel layer (kernel.go) prefers the stock curve's fused CombinedMult
// when the platform exposes it (amd64/arm64 assembly). On every other
// platform the stock fallback is the generic, constant-time CurveParams
// ladder — one full double-and-add pass per scalar, so a verification pair
// s·G + c·P costs two complete ladders plus an affine Add. The engine in
// this file replaces that with a single Shamir/Strauss interleaved ladder:
// one shared run of 256 doublings serving every scalar in the pair, wNAF
// digit recoding so only ~1 in 6 steps adds, and the Lim-Lee comb table
// (comb.go) folding the fixed-base term into the same ladder.
//
// Everything here is VARIABLE-TIME by design: branch patterns follow digit
// values. That is safe only because verification inputs are public — the
// message, the ring, the response scalars and the challenge are all part of
// the signature being checked. Secret scalars (nonces, private keys) never
// enter this file; Sign and KeyImage use the stock constant-time curve ops
// exclusively (see DESIGN.md "Verification kernels").

import "math/big"

// Cached curve constants. P-256 has a = -3, which the doubling formula
// below exploits.
var (
	curveP = Curve.Params().P
	curveN = Curve.Params().N
	curveB = Curve.Params().B
)

// jacPoint is a point in Jacobian projective coordinates: the affine point
// is (x/z², y/z³); z = 0 encodes the point at infinity.
type jacPoint struct {
	x, y, z *big.Int
}

func newJacPoint() *jacPoint {
	return &jacPoint{x: new(big.Int), y: new(big.Int), z: new(big.Int)}
}

func (p *jacPoint) isInfinity() bool { return p.z.Sign() == 0 }

func (p *jacPoint) setInfinity() *jacPoint {
	p.x.SetInt64(1)
	p.y.SetInt64(1)
	p.z.SetInt64(0)
	return p
}

func (p *jacPoint) set(q *jacPoint) *jacPoint {
	p.x.Set(q.x)
	p.y.Set(q.y)
	p.z.Set(q.z)
	return p
}

// setAffine loads an affine point; the caller guarantees q is on the curve
// and not the identity placeholder.
func (p *jacPoint) setAffine(q Point) *jacPoint {
	p.x.Set(q.X)
	p.y.Set(q.Y)
	p.z.SetInt64(1)
	return p
}

// affine converts back to affine coordinates. Infinity maps to (0, 0) —
// the same convention the stock elliptic.Curve API uses — so kernel results
// are bit-compatible with stock results everywhere, including degenerate
// tampered-signature cases.
func (p *jacPoint) affine() Point {
	if p.isInfinity() {
		return Point{X: new(big.Int), Y: new(big.Int)}
	}
	zinv := new(big.Int).ModInverse(p.z, curveP)
	zinv2 := new(big.Int).Mul(zinv, zinv)
	zinv2.Mod(zinv2, curveP)
	x := new(big.Int).Mul(p.x, zinv2)
	x.Mod(x, curveP)
	zinv2.Mul(zinv2, zinv)
	zinv2.Mod(zinv2, curveP)
	y := new(big.Int).Mul(p.y, zinv2)
	y.Mod(y, curveP)
	return Point{X: x, Y: y}
}

// jacScratch holds the temporaries one ladder run reuses across every
// double/add step, so the per-step big.Int churn is bounded.
type jacScratch struct {
	t1, t2, t3, t4, t5, t6, t7 *big.Int
	tmp                        *jacPoint
}

func newJacScratch() *jacScratch {
	return &jacScratch{
		t1: new(big.Int), t2: new(big.Int), t3: new(big.Int),
		t4: new(big.Int), t5: new(big.Int), t6: new(big.Int),
		t7: new(big.Int), tmp: newJacPoint(),
	}
}

// double sets p = 2p in place, using the a = -3 Jacobian doubling formula
// (dbl-2001-b): correct for every input including infinity and y = 0.
func (p *jacPoint) double(s *jacScratch) {
	if p.isInfinity() {
		return
	}
	delta := s.t1.Mul(p.z, p.z)
	delta.Mod(delta, curveP)
	gamma := s.t2.Mul(p.y, p.y)
	gamma.Mod(gamma, curveP)
	beta := s.t3.Mul(p.x, gamma)
	beta.Mod(beta, curveP)

	// alpha = 3(x - delta)(x + delta)
	alpha := s.t4.Sub(p.x, delta)
	t := s.t5.Add(p.x, delta)
	alpha.Mul(alpha, t)
	alpha.Mul(alpha, three)
	alpha.Mod(alpha, curveP)

	// z3 = (y + z)² - gamma - delta  (= 2yz)
	z3 := s.t5.Add(p.y, p.z)
	z3.Mul(z3, z3)
	z3.Sub(z3, gamma)
	z3.Sub(z3, delta)
	z3.Mod(z3, curveP)

	// x3 = alpha² - 8 beta
	x3 := s.t6.Mul(alpha, alpha)
	t = s.t7.Lsh(beta, 3)
	x3.Sub(x3, t)
	x3.Mod(x3, curveP)

	// y3 = alpha(4 beta - x3) - 8 gamma²
	y3 := s.t7.Lsh(beta, 2)
	y3.Sub(y3, x3)
	y3.Mul(y3, alpha)
	t = s.t1.Mul(gamma, gamma)
	t.Lsh(t, 3)
	y3.Sub(y3, t)
	y3.Mod(y3, curveP)

	p.x.Set(x3)
	p.y.Set(y3)
	p.z.Set(z3)
}

var three = big.NewInt(3)

// addAffine sets p = p + q (or p - q when neg), with q affine. Mixed
// addition (madd-2007-bl): ~8 field multiplications against ~12 for the
// general formula, which is why the ladder tables are stored affine.
func (p *jacPoint) addAffine(q Point, neg bool, s *jacScratch) {
	qy := q.Y
	if neg {
		qy = s.t7.Sub(curveP, q.Y)
	}
	if p.isInfinity() {
		p.x.Set(q.X)
		p.y.Set(qy)
		p.z.SetInt64(1)
		return
	}
	z1z1 := s.t1.Mul(p.z, p.z)
	z1z1.Mod(z1z1, curveP)
	u2 := s.t2.Mul(q.X, z1z1)
	u2.Mod(u2, curveP)
	s2 := s.t3.Mul(qy, p.z)
	s2.Mul(s2, z1z1)
	s2.Mod(s2, curveP)

	h := u2.Sub(u2, p.x) // H = U2 - X1
	h.Mod(h, curveP)
	r := s2.Sub(s2, p.y) // r = S2 - Y1 (halved variant: track r, double later)
	r.Mod(r, curveP)

	if h.Sign() == 0 {
		if r.Sign() == 0 {
			// Same point: fall back to doubling. qy mutation above is
			// irrelevant — doubling reads only p.
			p.double(s)
			return
		}
		p.setInfinity() // P + (-P)
		return
	}

	r.Lsh(r, 1) // r = 2(S2 - Y1)
	hh := s.t4.Mul(h, h)
	hh.Mod(hh, curveP)
	i := s.t5.Lsh(hh, 2) // I = 4 HH
	i.Mod(i, curveP)
	j := s.t6.Mul(h, i) // J = H I
	j.Mod(j, curveP)
	v := i.Mul(p.x, i) // V = X1 I
	v.Mod(v, curveP)

	// x3 = r² - J - 2V
	x3 := s.t7.Mul(r, r)
	x3.Sub(x3, j)
	x3.Sub(x3, v)
	x3.Sub(x3, v)
	x3.Mod(x3, curveP)

	// y3 = r(V - x3) - 2 Y1 J
	v.Sub(v, x3)
	v.Mul(v, r)
	j.Mul(j, p.y)
	j.Lsh(j, 1)
	v.Sub(v, j)
	v.Mod(v, curveP)

	// z3 = (Z1 + H)² - Z1Z1 - HH  (= 2 Z1 H)
	z3 := hh // reuse backing storage
	t := s.t2.Add(p.z, h)
	t.Mul(t, t)
	t.Sub(t, z1z1)
	t.Sub(t, s.t4)
	z3.Set(t)
	z3.Mod(z3, curveP)

	p.x.Set(x3)
	p.y.Set(v)
	p.z.Set(z3)
}

// wnafWidth is the window width for variable-point recoding: digits are odd
// in ±{1..15}, the table holds 8 odd multiples, and on average one step in
// w+1 = 6 performs an addition.
const wnafWidth = 5

// wnafDigits recodes k (0 ≤ k < N) into width-w non-adjacent form,
// little-endian: k = Σ d[i]·2^i with d[i] ∈ {0, ±1, ±3, …, ±(2^(w-1)-1)}.
// The digit stream's length and density follow k's bit pattern.
//
//tmlint:vartime
func wnafDigits(k *big.Int, w uint) []int8 {
	if k.Sign() == 0 {
		return nil
	}
	digits := make([]int8, 0, k.BitLen()+1)
	n := new(big.Int).Set(k)
	mask := int64(1)<<w - 1
	half := int64(1) << (w - 1)
	for n.Sign() > 0 {
		var d int64
		if n.Bit(0) == 1 {
			d = int64(n.Bits()[0]) & mask
			if d >= half {
				d -= mask + 1
			}
			if d > 0 {
				n.Sub(n, small(d))
			} else {
				n.Add(n, small(-d))
			}
		}
		digits = append(digits, int8(d))
		n.Rsh(n, 1)
	}
	return digits
}

// small returns a cached *big.Int for v ∈ [0, 16): the only magnitudes wNAF
// recoding ever adds or subtracts.
func small(v int64) *big.Int { return smallInts[v] }

var smallInts = func() [16]*big.Int {
	var s [16]*big.Int
	for i := range s {
		s[i] = big.NewInt(int64(i))
	}
	return s
}()

// oddMultiples fills tbl with the odd multiples {1, 3, 5, …, 15}·p in
// affine coordinates — the wNAF lookup table for one variable point. The
// ladders index this table by scalar digit, a classic address side channel.
//
//tmlint:vartime
func oddMultiples(p Point, tbl *[8]Point) {
	s := newJacScratch()
	twoP := newJacPoint().setAffine(p)
	twoP.double(s)
	two := twoP.affine()
	acc := newJacPoint().setAffine(p)
	tbl[0] = p
	for i := 1; i < 8; i++ {
		acc.addAffine(two, false, s)
		tbl[i] = acc.affine()
	}
}

// strausBaseVar computes s·G + c·P with one interleaved ladder: the comb
// table supplies the fixed-base teeth (32 additions, no doublings of its
// own) and wNAF digits of c drive the variable-point additions, all over a
// single shared run of doublings. Branches and table indices follow scalar
// digits — verify-only, never for secrets.
//
//tmlint:vartime
func strausBaseVar(sc, c *big.Int, pub Point) Point {
	comb := combTableG()
	var sb [32]byte
	reduceScalar(sc).FillBytes(sb[:])

	var tbl [8]Point
	cd := wnafDigits(reduceScalar(c), wnafWidth)
	if len(cd) > 0 {
		oddMultiples(pub, &tbl)
	}

	s := newJacScratch()
	acc := newJacPoint().setInfinity()
	top := combSpacing - 1
	if len(cd)-1 > top {
		top = len(cd) - 1
	}
	for i := top; i >= 0; i-- {
		acc.double(s)
		if i < len(cd) && cd[i] != 0 {
			if cd[i] > 0 {
				acc.addAffine(tbl[cd[i]>>1], false, s)
			} else {
				acc.addAffine(tbl[(-cd[i])>>1], true, s)
			}
		}
		if i < combSpacing {
			if col := combColumn(&sb, i); col != 0 {
				acc.addAffine(comb[col-1], false, s)
			}
		}
	}
	return acc.affine()
}

// strausVarVar computes a·Q + b·R for two variable points with one shared
// ladder and two wNAF digit streams. Branches and table indices follow
// scalar digits — verify-only, never for secrets.
//
//tmlint:vartime
func strausVarVar(a *big.Int, q Point, b *big.Int, r Point) Point {
	ad := wnafDigits(reduceScalar(a), wnafWidth)
	bd := wnafDigits(reduceScalar(b), wnafWidth)
	var qt, rt [8]Point
	if len(ad) > 0 {
		oddMultiples(q, &qt)
	}
	if len(bd) > 0 {
		oddMultiples(r, &rt)
	}

	s := newJacScratch()
	acc := newJacPoint().setInfinity()
	top := len(ad)
	if len(bd) > top {
		top = len(bd)
	}
	for i := top - 1; i >= 0; i-- {
		acc.double(s)
		if i < len(ad) && ad[i] != 0 {
			if ad[i] > 0 {
				acc.addAffine(qt[ad[i]>>1], false, s)
			} else {
				acc.addAffine(qt[(-ad[i])>>1], true, s)
			}
		}
		if i < len(bd) && bd[i] != 0 {
			if bd[i] > 0 {
				acc.addAffine(rt[bd[i]>>1], false, s)
			} else {
				acc.addAffine(rt[(-bd[i])>>1], true, s)
			}
		}
	}
	return acc.affine()
}

// reduceScalar returns k mod N without copying when k is already in range —
// the verification path always is; the reduction only triggers on inputs
// from differential tests poking at the raw kernels.
func reduceScalar(k *big.Int) *big.Int {
	if k.Sign() >= 0 && k.Cmp(curveN) < 0 {
		return k
	}
	return new(big.Int).Mod(k, curveN)
}
