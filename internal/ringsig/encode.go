package ringsig

import (
	"encoding/json"
	"fmt"
	"math/big"
)

// Wire encodings: signatures and points marshal to JSON with hex-encoded
// big-endian integers, so any client stack can produce and verify them.

type pointWire struct {
	X string `json:"x"`
	Y string `json:"y"`
}

// MarshalJSON encodes the point; the zero point encodes as {"x":"","y":""}.
func (p Point) MarshalJSON() ([]byte, error) {
	if p.IsZero() {
		return json.Marshal(pointWire{})
	}
	return json.Marshal(pointWire{X: p.X.Text(16), Y: p.Y.Text(16)})
}

// UnmarshalJSON decodes a point and validates it is on the curve (or zero).
func (p *Point) UnmarshalJSON(data []byte) error {
	var w pointWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.X == "" && w.Y == "" {
		p.X, p.Y = nil, nil
		return nil
	}
	x, okX := new(big.Int).SetString(w.X, 16)
	y, okY := new(big.Int).SetString(w.Y, 16)
	if !okX || !okY {
		return fmt.Errorf("ringsig: malformed point hex")
	}
	if !Curve.IsOnCurve(x, y) {
		return fmt.Errorf("ringsig: decoded point not on curve")
	}
	p.X, p.Y = x, y
	return nil
}

type signatureWire struct {
	C0    string   `json:"c0"`
	S     []string `json:"s"`
	Image Point    `json:"image"`
}

// MarshalJSON encodes the signature.
func (sig *Signature) MarshalJSON() ([]byte, error) {
	if sig == nil {
		return []byte("null"), nil
	}
	w := signatureWire{C0: sig.C0.Text(16), Image: sig.Image}
	for _, s := range sig.S {
		w.S = append(w.S, s.Text(16))
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a signature; scalar range checks happen at Verify.
func (sig *Signature) UnmarshalJSON(data []byte) error {
	var w signatureWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	c0, ok := new(big.Int).SetString(w.C0, 16)
	if !ok {
		return fmt.Errorf("ringsig: malformed c0")
	}
	sig.C0 = c0
	sig.S = sig.S[:0]
	for i, hexS := range w.S {
		s, ok := new(big.Int).SetString(hexS, 16)
		if !ok {
			return fmt.Errorf("ringsig: malformed scalar %d", i)
		}
		sig.S = append(sig.S, s)
	}
	sig.Image = w.Image
	return nil
}
