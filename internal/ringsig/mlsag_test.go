package ringsig

import (
	"crypto/rand"
	"errors"
	"math/big"
	"testing"
)

// genMatrix builds an n×m key matrix with the signer's keys at signerIdx.
func genMatrix(t testing.TB, n, m, signerIdx int) ([]*PrivateKey, [][]Point) {
	t.Helper()
	keys := make([]*PrivateKey, m)
	matrix := make([][]Point, n)
	for i := range matrix {
		matrix[i] = make([]Point, m)
		for j := range matrix[i] {
			k, err := GenerateKey(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			matrix[i][j] = k.Public
			if i == signerIdx {
				keys[j] = k
			}
		}
	}
	return keys, matrix
}

func TestMultiSignVerifyRoundTrip(t *testing.T) {
	for _, dims := range [][2]int{{3, 1}, {4, 2}, {5, 3}} {
		n, m := dims[0], dims[1]
		for idx := 0; idx < n; idx++ {
			keys, matrix := genMatrix(t, n, m, idx)
			msg := []byte("multi-input spend")
			sig, err := MultiSign(rand.Reader, keys, matrix, idx, msg)
			if err != nil {
				t.Fatalf("n=%d m=%d idx=%d: %v", n, m, idx, err)
			}
			if err := MultiVerify(sig, matrix, msg); err != nil {
				t.Fatalf("n=%d m=%d idx=%d verify: %v", n, m, idx, err)
			}
		}
	}
}

func TestMultiVerifyRejectsTampering(t *testing.T) {
	keys, matrix := genMatrix(t, 4, 2, 1)
	msg := []byte("m")
	sig, err := MultiSign(rand.Reader, keys, matrix, 1, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := MultiVerify(sig, matrix, []byte("other")); !errors.Is(err, ErrInvalidMulti) {
		t.Fatalf("tampered msg err = %v", err)
	}
	bad := *sig
	bad.S = make([][]*big.Int, len(sig.S))
	copy(bad.S, sig.S)
	row := make([]*big.Int, len(sig.S[0][:]))
	copy(row, sig.S[0])
	row[0] = new(big.Int).Add(row[0], big.NewInt(1))
	row[0].Mod(row[0], Curve.Params().N)
	bad.S[0] = row
	if err := MultiVerify(&bad, matrix, msg); !errors.Is(err, ErrInvalidMulti) {
		t.Fatalf("tampered scalar err = %v", err)
	}
	// Wrong matrix.
	_, other := genMatrix(t, 4, 2, 0)
	if err := MultiVerify(sig, other, msg); err == nil {
		t.Fatal("foreign matrix must fail")
	}
}

func TestMultiSignInputValidation(t *testing.T) {
	keys, matrix := genMatrix(t, 3, 2, 0)
	msg := []byte("m")
	if _, err := MultiSign(rand.Reader, keys, matrix[:1], 0, msg); !errors.Is(err, ErrSmallRing) {
		t.Fatalf("small ring err = %v", err)
	}
	if _, err := MultiSign(rand.Reader, keys[:1], matrix, 0, msg); !errors.Is(err, ErrBadKeyCount) {
		t.Fatalf("key count err = %v", err)
	}
	if _, err := MultiSign(rand.Reader, keys, matrix, 2, msg); !errors.Is(err, ErrKeyMismatch) {
		t.Fatalf("wrong row err = %v", err)
	}
	if _, err := MultiSign(rand.Reader, keys, matrix, -1, msg); !errors.Is(err, ErrNotInRing) {
		t.Fatalf("negative idx err = %v", err)
	}
	ragged := [][]Point{matrix[0], matrix[1][:1], matrix[2]}
	if _, err := MultiSign(rand.Reader, keys, ragged, 0, msg); !errors.Is(err, ErrBadMatrix) {
		t.Fatalf("ragged matrix err = %v", err)
	}
}

func TestMultiLinkability(t *testing.T) {
	keys, matrix := genMatrix(t, 3, 2, 0)
	msg := []byte("m")
	sig1, err := MultiSign(rand.Reader, keys, matrix, 0, msg)
	if err != nil {
		t.Fatal(err)
	}
	// Same keys in a different matrix (different decoys): still linked.
	_, matrix2 := genMatrix(t, 3, 2, 1)
	for j := range keys {
		matrix2[2][j] = keys[j].Public
	}
	keys2 := keys
	sig2, err := MultiSign(rand.Reader, keys2, matrix2, 2, []byte("again"))
	if err != nil {
		t.Fatal(err)
	}
	if !LinkedMulti(sig1, sig2) {
		t.Fatal("re-spending the same inputs must link")
	}
	// Fresh keys: unlinked.
	keys3, matrix3 := genMatrix(t, 3, 2, 0)
	sig3, err := MultiSign(rand.Reader, keys3, matrix3, 0, msg)
	if err != nil {
		t.Fatal(err)
	}
	if LinkedMulti(sig1, sig3) {
		t.Fatal("fresh inputs must not link")
	}
	if LinkedMulti(nil, sig1) {
		t.Fatal("nil never links")
	}
}

func TestMultiSingleColumnMatchesConcept(t *testing.T) {
	// A 1-column MLSAG is a plain bLSAG: verify both accept the same setup.
	keys, matrix := genMatrix(t, 4, 1, 2)
	msg := []byte("single input")
	msig, err := MultiSign(rand.Reader, keys, matrix, 2, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := MultiVerify(msig, matrix, msg); err != nil {
		t.Fatal(err)
	}
	// The key image matches the single-layer construction's.
	if !msig.Images[0].Equal(keys[0].KeyImage()) {
		t.Fatal("key image must match the single-layer definition")
	}
}

func BenchmarkMultiSign11x2(b *testing.B) {
	keys, matrix := genMatrix(b, 11, 2, 0)
	msg := []byte("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MultiSign(rand.Reader, keys, matrix, 0, msg); err != nil {
			b.Fatal(err)
		}
	}
}
