package ringsig

// Lim-Lee fixed-base comb table for the P-256 generator.
//
// The 256-bit scalar is viewed as a 32×8 bit matrix: tooth t of column j is
// bit j + 32t. Table entry m (1 ≤ m ≤ 255) holds Σ_{t ∈ bits(m)} 2^(32t)·G,
// so s·G = Σ_{j=0}^{31} 2^j·T[col_j(s)] — 32 table additions folded into a
// ladder that is already doubling for the Strauss pass, with zero doublings
// of its own. The table is built once per process, on first use of the
// fallback engine (platforms whose stock curve exposes the fused
// CombinedMult never touch it outside tests), and is read-only afterwards.

import "sync"

const (
	// combTeeth × combSpacing must cover the 256-bit scalar width.
	combTeeth   = 8
	combSpacing = 32
)

var (
	combOnce sync.Once
	combG    *[255]Point
)

// combTableG returns the comb table, building it on first use.
func combTableG() *[255]Point {
	combOnce.Do(buildCombG)
	return combG
}

func buildCombG() {
	s := newJacScratch()
	params := Curve.Params()
	g := Point{X: params.Gx, Y: params.Gy}

	// bases[t] = 2^(32t)·G, affine.
	var bases [combTeeth]Point
	bases[0] = g
	acc := newJacPoint().setAffine(g)
	for t := 1; t < combTeeth; t++ {
		for d := 0; d < combSpacing; d++ {
			acc.double(s)
		}
		bases[t] = acc.affine()
	}

	// Entry m extends entry m with its lowest set bit cleared; building in
	// increasing m order guarantees the prefix entry already exists.
	jac := make([]*jacPoint, 256)
	var table [255]Point
	for m := 1; m <= 255; m++ {
		t := trailingZeros8(uint8(m))
		rest := m &^ (1 << t)
		p := newJacPoint()
		if rest == 0 {
			p.setAffine(bases[t])
		} else {
			p.set(jac[rest])
			p.addAffine(bases[t], false, s)
		}
		jac[m] = p
		table[m-1] = p.affine()
	}
	combG = &table
}

func trailingZeros8(v uint8) uint {
	var n uint
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}

// combColumn extracts column j of the comb bit matrix from a 32-byte
// big-endian scalar: bit t of the result is scalar bit j + 32t. The result
// indexes the comb table, so the access pattern follows the scalar.
//
//tmlint:vartime
func combColumn(sb *[32]byte, j int) uint8 {
	var col uint8
	for t := 0; t < combTeeth; t++ {
		k := j + combSpacing*t
		bit := (sb[31-k/8] >> (uint(k) % 8)) & 1
		col |= bit << uint(t)
	}
	return col
}
