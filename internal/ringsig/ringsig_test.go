package ringsig

import (
	"crypto/rand"
	"errors"
	"math/big"
	"testing"
)

func genRing(t testing.TB, n int) ([]*PrivateKey, []Point) {
	t.Helper()
	keys := make([]*PrivateKey, n)
	ring := make([]Point, n)
	for i := range keys {
		k, err := GenerateKey(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
		ring[i] = k.Public
	}
	return keys, ring
}

func TestSignVerifyRoundTrip(t *testing.T) {
	keys, ring := genRing(t, 5)
	msg := []byte("spend token 42")
	for idx := range keys {
		sig, err := Sign(rand.Reader, keys[idx], ring, idx, msg)
		if err != nil {
			t.Fatalf("Sign(idx=%d): %v", idx, err)
		}
		if err := Verify(sig, ring, msg); err != nil {
			t.Fatalf("Verify(idx=%d): %v", idx, err)
		}
	}
}

func TestVerifyRejectsWrongMessage(t *testing.T) {
	keys, ring := genRing(t, 3)
	sig, err := Sign(rand.Reader, keys[1], ring, 1, []byte("original"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(sig, ring, []byte("tampered")); !errors.Is(err, ErrInvalid) {
		t.Fatalf("tampered message: err = %v, want ErrInvalid", err)
	}
}

func TestVerifyRejectsWrongRing(t *testing.T) {
	keys, ring := genRing(t, 3)
	_, other := genRing(t, 3)
	msg := []byte("m")
	sig, err := Sign(rand.Reader, keys[0], ring, 0, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(sig, other, msg); err == nil {
		t.Fatal("verification against a different ring must fail")
	}
}

func TestVerifyRejectsTamperedScalar(t *testing.T) {
	keys, ring := genRing(t, 4)
	msg := []byte("m")
	sig, err := Sign(rand.Reader, keys[2], ring, 2, msg)
	if err != nil {
		t.Fatal(err)
	}
	sig.S[0] = new(big.Int).Add(sig.S[0], big.NewInt(1))
	sig.S[0].Mod(sig.S[0], Curve.Params().N)
	if err := Verify(sig, ring, msg); !errors.Is(err, ErrInvalid) {
		t.Fatalf("tampered scalar: err = %v", err)
	}
}

func TestVerifyRejectsOutOfRangeScalar(t *testing.T) {
	keys, ring := genRing(t, 3)
	msg := []byte("m")
	sig, err := Sign(rand.Reader, keys[0], ring, 0, msg)
	if err != nil {
		t.Fatal(err)
	}
	sig.S[1] = new(big.Int).Add(Curve.Params().N, big.NewInt(5))
	if err := Verify(sig, ring, msg); !errors.Is(err, ErrInvalid) {
		t.Fatalf("out-of-range scalar: err = %v", err)
	}
}

func TestLinkability(t *testing.T) {
	keys, ring := genRing(t, 4)
	sig1, err := Sign(rand.Reader, keys[1], ring, 1, []byte("first spend"))
	if err != nil {
		t.Fatal(err)
	}
	sig2, err := Sign(rand.Reader, keys[1], ring, 1, []byte("second spend"))
	if err != nil {
		t.Fatal(err)
	}
	if !Linked(sig1, sig2) {
		t.Fatal("same key must produce linked signatures (double-spend detection)")
	}
	sig3, err := Sign(rand.Reader, keys[2], ring, 2, []byte("other signer"))
	if err != nil {
		t.Fatal(err)
	}
	if Linked(sig1, sig3) {
		t.Fatal("different keys must not be linked")
	}
	if Linked(nil, sig1) || Linked(sig1, nil) {
		t.Fatal("nil signatures are never linked")
	}
}

func TestKeyImageDeterministic(t *testing.T) {
	k, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	i1, i2 := k.KeyImage(), k.KeyImage()
	if !i1.Equal(i2) {
		t.Fatal("key image must be deterministic")
	}
	if !Curve.IsOnCurve(i1.X, i1.Y) {
		t.Fatal("key image must be on curve")
	}
}

func TestSignErrors(t *testing.T) {
	keys, ring := genRing(t, 3)
	msg := []byte("m")
	if _, err := Sign(rand.Reader, keys[0], ring[:1], 0, msg); !errors.Is(err, ErrSmallRing) {
		t.Fatalf("small ring: err = %v", err)
	}
	if _, err := Sign(rand.Reader, keys[0], ring, 1, msg); !errors.Is(err, ErrNotInRing) {
		t.Fatalf("wrong index: err = %v", err)
	}
	if _, err := Sign(rand.Reader, keys[0], ring, -1, msg); !errors.Is(err, ErrNotInRing) {
		t.Fatalf("negative index: err = %v", err)
	}
	bad := append([]Point{}, ring...)
	bad[2] = Point{X: big.NewInt(1), Y: big.NewInt(1)}
	if _, err := Sign(rand.Reader, keys[0], bad, 0, msg); !errors.Is(err, ErrBadRingKeys) {
		t.Fatalf("bad ring point: err = %v", err)
	}
}

func TestVerifyErrors(t *testing.T) {
	keys, ring := genRing(t, 3)
	msg := []byte("m")
	sig, err := Sign(rand.Reader, keys[0], ring, 0, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(nil, ring, msg); !errors.Is(err, ErrInvalid) {
		t.Fatalf("nil signature: err = %v", err)
	}
	if err := Verify(sig, ring[:2], msg); !errors.Is(err, ErrInvalid) {
		t.Fatalf("ring size mismatch: err = %v", err)
	}
	badImage := *sig
	badImage.Image = Point{X: big.NewInt(1), Y: big.NewInt(1)}
	if err := Verify(&badImage, ring, msg); !errors.Is(err, ErrInvalid) {
		t.Fatalf("off-curve image: err = %v", err)
	}
}

func TestHashToPointProperties(t *testing.T) {
	k1, _ := GenerateKey(rand.Reader)
	k2, _ := GenerateKey(rand.Reader)
	p1 := hashToPoint(k1.Public)
	p2 := hashToPoint(k2.Public)
	if !Curve.IsOnCurve(p1.X, p1.Y) || !Curve.IsOnCurve(p2.X, p2.Y) {
		t.Fatal("hashToPoint must land on the curve")
	}
	if p1.Equal(p2) {
		t.Fatal("distinct keys should hash to distinct points")
	}
	if !hashToPoint(k1.Public).Equal(p1) {
		t.Fatal("hashToPoint must be deterministic")
	}
}

func TestPointHelpers(t *testing.T) {
	var zero Point
	if !zero.IsZero() {
		t.Fatal("zero point should be zero")
	}
	if len(zero.Bytes()) != 1 {
		t.Fatal("zero point encoding should be sentinel")
	}
	k, _ := GenerateKey(rand.Reader)
	if k.Public.IsZero() {
		t.Fatal("generated key must not be zero")
	}
	if !k.Public.Equal(k.Public) {
		t.Fatal("point must equal itself")
	}
	if k.Public.Equal(zero) || zero.Equal(k.Public) {
		t.Fatal("point must not equal zero")
	}
}

func BenchmarkSignRing11(b *testing.B) {
	keys, ring := genRing(b, 11)
	msg := []byte("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sign(rand.Reader, keys[0], ring, 0, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyRing11(b *testing.B) {
	keys, ring := genRing(b, 11)
	msg := []byte("bench")
	sig, err := Sign(rand.Reader, keys[0], ring, 0, msg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(sig, ring, msg); err != nil {
			b.Fatal(err)
		}
	}
}
