package ringsig

// Tests for the fixes the cttime analyzer forced (see DESIGN.md
// "Constant-time policy"):
//
//   - stock.go now encodes every secret scalar fixed-width (FillBytes(32))
//     instead of variable-width Bytes(). The scalar VALUES are unchanged,
//     so the differential tests here prove signatures byte-identical and
//     verify decisions unchanged against test-local copies of the pre-fix
//     encodings.
//   - sigcache.go's transcript key encodes C0 fixed-width (v2): the
//     collision tests demonstrate the aliasing a naive variable-width
//     concatenation admits and pin that the shipped key is injective across
//     boundary-shifted transcripts.
//   - mlsag.go's multiChallenge frames the message length and part count
//     (v2): the pre-fix unframed transcript aliased a message ending in a
//     point encoding against a transcript with one more column.
//   - a dudect-style paired Welch's t-test smoke compares Sign latency
//     across fixed-vs-random secret bit patterns (advisory only).

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"math"
	"math/big"
	"testing"
	"time"
)

// prefixStockSign is the pre-fix StockSign: variable-width alpha.Bytes()
// handed to the curve ops, same rng draw order. Kept test-local as the
// differential baseline proving the FillBytes fix changed no output.
func prefixStockSign(rng *detReader, sk *PrivateKey, ring []Point, signerIdx int, msg []byte) (*Signature, error) {
	n := len(ring)
	order := Curve.Params().N
	image := prefixStockKeyImage(sk)

	alpha, err := randScalar(rng)
	if err != nil {
		return nil, err
	}
	s := make([]*big.Int, n)
	c := make([]*big.Int, n)

	agx, agy := Curve.ScalarBaseMult(alpha.Bytes())
	hpPi := stockHashToPoint(ring[signerIdx])
	ahx, ahy := Curve.ScalarMult(hpPi.X, hpPi.Y, alpha.Bytes())
	c[(signerIdx+1)%n] = challenge(msg, Point{agx, agy}, Point{ahx, ahy})

	for off := 1; off < n; off++ {
		i := (signerIdx + off) % n
		s[i], err = randScalar(rng)
		if err != nil {
			return nil, err
		}
		c[(i+1)%n] = prefixStockRingStep(msg, ring[i], image, s[i], c[i])
	}

	sPi := new(big.Int).Mul(c[signerIdx], sk.D)
	sPi.Sub(alpha, sPi)
	sPi.Mod(sPi, order)
	s[signerIdx] = sPi

	return &Signature{C0: c[0], S: s, Image: image}, nil
}

func prefixStockKeyImage(k *PrivateKey) Point {
	hp := stockHashToPoint(k.Public)
	x, y := Curve.ScalarMult(hp.X, hp.Y, k.D.Bytes())
	return Point{X: x, Y: y}
}

func prefixStockRingStep(msg []byte, pub, image Point, s, c *big.Int) *big.Int {
	sgx, sgy := Curve.ScalarBaseMult(s.Bytes())
	cpx, cpy := Curve.ScalarMult(pub.X, pub.Y, c.Bytes())
	lx, ly := Curve.Add(sgx, sgy, cpx, cpy)

	hp := stockHashToPoint(pub)
	shx, shy := Curve.ScalarMult(hp.X, hp.Y, s.Bytes())
	cix, ciy := Curve.ScalarMult(image.X, image.Y, c.Bytes())
	rx, ry := Curve.Add(shx, shy, cix, ciy)

	return challenge(msg, Point{lx, ly}, Point{rx, ry})
}

// prefixStockVerify is StockVerify with the pre-fix variable-width chain.
func prefixStockVerify(sig *Signature, ring []Point, msg []byte) error {
	n := len(ring)
	if sig == nil || n < 2 || len(sig.S) != n || sig.C0 == nil {
		return ErrInvalid
	}
	if sig.Image.IsZero() || !Curve.IsOnCurve(sig.Image.X, sig.Image.Y) {
		return ErrInvalid
	}
	for _, p := range ring {
		if p.IsZero() || !Curve.IsOnCurve(p.X, p.Y) {
			return ErrBadRingKeys
		}
	}
	order := Curve.Params().N
	c := new(big.Int).Set(sig.C0)
	for i := 0; i < n; i++ {
		if sig.S[i] == nil || sig.S[i].Sign() < 0 || sig.S[i].Cmp(order) >= 0 {
			return ErrInvalid
		}
		c = prefixStockRingStep(msg, ring[i], sig.Image, sig.S[i], c)
	}
	if c.Cmp(sig.C0) != 0 {
		return ErrInvalid
	}
	return nil
}

// TestStockSignFixedWidthByteIdentical proves the FillBytes(32) fix is a
// pure encoding change: given the same rng stream, the fixed-width StockSign
// emits bit-for-bit the signature the variable-width pre-fix code produced,
// for every signer position.
func TestStockSignFixedWidthByteIdentical(t *testing.T) {
	keyRng := newDetReader("cttime-fix-keys")
	keys := make([]*PrivateKey, 6)
	ring := make([]Point, 6)
	for i := range keys {
		k, err := GenerateKey(keyRng)
		if err != nil {
			t.Fatal(err)
		}
		keys[i], ring[i] = k, k.Public
	}
	msg := []byte("fixed-width encoding differential")
	for idx := range keys {
		got, err := StockSign(newDetReader("cttime-fix-nonces"), keys[idx], ring, idx, msg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := prefixStockSign(newDetReader("cttime-fix-nonces"), keys[idx], ring, idx, msg)
		if err != nil {
			t.Fatal(err)
		}
		if got.C0.Cmp(want.C0) != 0 {
			t.Fatalf("idx %d: C0 differs after encoding fix: %v vs %v", idx, got.C0, want.C0)
		}
		if !got.Image.Equal(want.Image) {
			t.Fatalf("idx %d: key image differs after encoding fix", idx)
		}
		for i := range got.S {
			if got.S[i].Cmp(want.S[i]) != 0 {
				t.Fatalf("idx %d: s[%d] differs after encoding fix", idx, i)
			}
		}
		if err := StockVerify(got, ring, msg); err != nil {
			t.Fatalf("idx %d: fixed-width signature rejected: %v", idx, err)
		}
	}
}

// TestStockVerifyDecisionsUnchangedByEncoding runs the tamper grid through
// both verifier encodings: every accept/reject decision must agree,
// including the oversized C0 case that exercises the reduceScalar guard in
// front of FillBytes.
func TestStockVerifyDecisionsUnchangedByEncoding(t *testing.T) {
	keys, ring := genRing(t, 5)
	msg := []byte("decision parity across encodings")
	sig, err := Sign(rand.Reader, keys[2], ring, 2, msg)
	if err != nil {
		t.Fatal(err)
	}
	cases := append([]*Signature{sig}, mutateSig(sig, ring)...)
	for i, sc := range cases {
		got := StockVerify(sc, ring, msg)
		want := prefixStockVerify(sc, ring, msg)
		if (got == nil) != (want == nil) {
			t.Errorf("case %d: decision differs: fixed-width %v, pre-fix %v", i, got, want)
		}
	}
}

// naiveTranscriptKey is the strawman the SigCache fix guards against: raw
// concatenation with a variable-width C0 and no length framing anywhere.
func naiveTranscriptKey(sig *Signature, ring []Point, msg []byte) [32]byte {
	h := sha256.New()
	hashWrite(h, []byte("naive"), msg, sig.C0.Bytes())
	for _, p := range ring {
		hashWrite(h, p.Bytes())
	}
	for _, s := range sig.S {
		hashWrite(h, s.Bytes())
	}
	hashWrite(h, sig.Image.Bytes())
	var key [32]byte
	h.Sum(key[:0])
	return key
}

// TestTranscriptKeyBoundaryCollisions constructs the aliasing pair the
// naive encoding admits — a byte moved across the msg/C0 boundary — and
// asserts the shipped fixed-width v2 key distinguishes every such pair.
func TestTranscriptKeyBoundaryCollisions(t *testing.T) {
	_, ring := genRing(t, 3)
	mkSig := func(c0 *big.Int) *Signature {
		return &Signature{
			C0:    c0,
			S:     []*big.Int{big.NewInt(5), big.NewInt(6), big.NewInt(7)},
			Image: ring[0],
		}
	}

	// Shift the leading C0 byte into the message: both transcripts
	// concatenate to the same byte stream.
	msgA := []byte("tx")
	c0A := new(big.Int).SetBytes([]byte{0xAA, 0xBB})
	msgB := append([]byte("tx"), 0xAA)
	c0B := new(big.Int).SetBytes([]byte{0xBB})

	sigA, sigB := mkSig(c0A), mkSig(c0B)
	if naiveTranscriptKey(sigA, ring, msgA) != naiveTranscriptKey(sigB, ring, msgB) {
		t.Fatal("the naive key was expected to collide on the boundary-shifted pair (demo broken)")
	}
	if transcriptKey(sigA, ring, msgA) == transcriptKey(sigB, ring, msgB) {
		t.Fatal("fixed-width transcript key collides on a boundary-shifted pair")
	}

	// A battery of legal C0 widths against message paddings that keep the
	// naive concatenation aligned: all must stay distinct under v2.
	widths := []*big.Int{
		big.NewInt(1),
		big.NewInt(0x80),
		new(big.Int).SetBytes(bytes.Repeat([]byte{0x7F}, 16)),
		new(big.Int).Sub(curveN, big.NewInt(1)),
	}
	seen := make(map[[32]byte]string)
	for _, c0 := range widths {
		enc := c0.Bytes()
		for shift := 0; shift <= len(enc) && shift <= 4; shift++ {
			m := append([]byte("m"), enc[:shift]...)
			s := mkSig(new(big.Int).SetBytes(enc[shift:]))
			key := transcriptKey(s, ring, m)
			label := string(m) + "|" + s.C0.String()
			if prev, dup := seen[key]; dup {
				t.Fatalf("transcript key collision between %q and %q", prev, label)
			}
			seen[key] = label
		}
	}
}

// TestTranscriptCacheRejectsBeforeKeying pins the order verifyOne relies on
// for FillBytes safety: an out-of-range C0 is rejected before the cache is
// consulted, so transcriptKey never sees one (no panic) and rejects are
// never recorded.
func TestTranscriptCacheRejectsBeforeKeying(t *testing.T) {
	keys, ring := genRing(t, 3)
	msg := []byte("cache ordering")
	sig, err := Sign(rand.Reader, keys[0], ring, 0, msg)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Seen: NewSigCache(16)}

	for _, bad := range []*big.Int{
		new(big.Int).Set(curveN),
		new(big.Int).Lsh(big.NewInt(1), 300),
		big.NewInt(-1),
	} {
		tampered := &Signature{C0: bad, S: sig.S, Image: sig.Image}
		if err := e.Verify(tampered, ring, msg); err == nil {
			t.Fatalf("out-of-range C0 %v accepted", bad)
		}
		if e.Seen.Len() != 0 {
			t.Fatalf("reject with C0 %v was recorded in the cache", bad)
		}
	}

	if err := e.Verify(sig, ring, msg); err != nil {
		t.Fatal(err)
	}
	if e.Seen.Len() != 1 {
		t.Fatalf("successful verification not cached: len=%d", e.Seen.Len())
	}
}

// prefixMultiChallenge is the pre-fix v1 transcript: unframed message
// directly before the point parts.
func prefixMultiChallenge(msg []byte, parts []Point) *big.Int {
	h := sha256.New()
	hashWrite(h, []byte("tokenmagic/mlsag/v1"), msg)
	for _, p := range parts {
		hashWrite(h, p.Bytes())
	}
	d := new(big.Int).SetBytes(h.Sum(nil))
	return d.Mod(d, Curve.Params().N)
}

// TestMultiChallengeV2Unambiguous pins the mlsag domain bump: the v1
// transcript aliased a message ending in a point encoding against a
// transcript with one more column; v2's length framing separates them. The
// single-layer challenge needs no framing — its suffix is exactly two
// points and Point.Bytes is fixed-width for the on-curve points the
// verifier admits — which TestPointBytesFixedWidth pins below.
func TestMultiChallengeV2Unambiguous(t *testing.T) {
	_, ring := genRing(t, 3)
	p1, p2 := ring[0], ring[1]

	msgA := []byte("transfer#1")
	partsA := []Point{p1, p2}
	msgB := append(append([]byte{}, msgA...), p1.Bytes()...)
	partsB := []Point{p2}

	if prefixMultiChallenge(msgA, partsA).Cmp(prefixMultiChallenge(msgB, partsB)) != 0 {
		t.Fatal("the v1 transcript was expected to alias the shifted pair (demo broken)")
	}
	if multiChallenge(msgA, partsA).Cmp(multiChallenge(msgB, partsB)) == 0 {
		t.Fatal("v2 multiChallenge still aliases a message/part boundary shift")
	}

	// Part-count framing also separates equal concatenations split across
	// column counts, and the single- and multi-layer transcripts live in
	// disjoint domains.
	if multiChallenge(msgA, []Point{p1, p2}).Cmp(multiChallenge(msgA, []Point{p1})) == 0 {
		t.Fatal("part count does not separate transcripts")
	}
	if challenge(msgA, p1, p2).Cmp(multiChallenge(msgA, []Point{p1, p2})) == 0 {
		t.Fatal("single- and multi-layer challenges share a domain")
	}
}

// TestPointBytesFixedWidth pins the fact the unframed single-layer
// challenge transcript relies on: every point a verifier admits (on-curve,
// non-zero) marshals to exactly 65 bytes, so the msg|L|R boundaries cannot
// shift.
func TestPointBytesFixedWidth(t *testing.T) {
	_, ring := genRing(t, 4)
	pts := append([]Point{}, ring...)
	pts = append(pts, hashToPoint(ring[0]), hashToPoint(ring[3]))
	for i, p := range pts {
		if got := len(p.Bytes()); got != 65 {
			t.Errorf("point %d marshals to %d bytes, want 65", i, got)
		}
	}
}

// TestSignLatencySecretIndependence is a dudect-style smoke: Welch's t-test
// on Sign latency between a fixed secret key and fresh random keys, using
// the order-balanced paired-rounds technique from TestTraceOverheadPaired
// so machine drift biases both classes equally. Advisory only — timing
// noise on shared runners swamps small effects, so the test logs the
// statistic instead of failing on it (dudect's |t| > 4.5 convention marks a
// likely leak).
func TestSignLatencySecretIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("timing smoke; skipped with -short")
	}

	const ringSize, K, R = 4, 12, 10

	decoyKeys, _ := genRing(t, ringSize-1)
	decoys := make([]Point, ringSize-1)
	for i, k := range decoyKeys {
		decoys[i] = k.Public
	}
	mkRing := func(signer Point) []Point {
		return append([]Point{signer}, decoys...)
	}

	fixedKey, err := GenerateKey(newDetReader("welch-fixed-secret"))
	if err != nil {
		t.Fatal(err)
	}
	fixedRing := mkRing(fixedKey.Public)

	randomKeys := make([]*PrivateKey, K*R)
	randomRings := make([][]Point, K*R)
	for i := range randomKeys {
		k, err := GenerateKey(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		randomKeys[i] = k
		randomRings[i] = mkRing(k.Public)
	}

	msg := []byte("latency independence smoke")
	signOnce := func(k *PrivateKey, ring []Point) {
		if _, err := Sign(rand.Reader, k, ring, 0, msg); err != nil {
			t.Fatal(err)
		}
	}

	// Warm both paths (hash-to-point, allocator, branch predictors).
	for i := 0; i < 8; i++ {
		signOnce(fixedKey, fixedRing)
		signOnce(randomKeys[i], randomRings[i])
	}

	var fixedNs, randomNs [R]float64
	next := 0
	measureFixed := func() float64 {
		start := time.Now()
		for i := 0; i < K; i++ {
			signOnce(fixedKey, fixedRing)
		}
		return float64(time.Since(start).Nanoseconds()) / K
	}
	measureRandom := func() float64 {
		start := time.Now()
		for i := 0; i < K; i++ {
			signOnce(randomKeys[next], randomRings[next])
			next++
		}
		return float64(time.Since(start).Nanoseconds()) / K
	}
	for r := 0; r < R; r++ {
		if r%2 == 0 {
			fixedNs[r] = measureFixed()
			randomNs[r] = measureRandom()
		} else {
			randomNs[r] = measureRandom()
			fixedNs[r] = measureFixed()
		}
	}

	mean := func(xs [R]float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / R
	}
	variance := func(xs [R]float64, m float64) float64 {
		var s float64
		for _, x := range xs {
			s += (x - m) * (x - m)
		}
		return s / (R - 1)
	}
	mf, mr := mean(fixedNs), mean(randomNs)
	vf, vr := variance(fixedNs, mf), variance(randomNs, mr)
	tStat := (mf - mr) / math.Sqrt(vf/R+vr/R)

	t.Logf("fixed-secret mean %.0fns, random-secret mean %.0fns over %d rounds x %d ops", mf, mr, R, K)
	t.Logf("Welch's t = %+.2f (|t| > 4.5 would suggest secret-dependent timing)", tStat)
	if math.Abs(tStat) > 4.5 {
		t.Logf("ADVISORY: |t| exceeds the dudect threshold; investigate before trusting this runner's numbers")
	}
}
