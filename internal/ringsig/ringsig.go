// Package ringsig implements a linkable ring signature scheme in the style
// of bLSAG (back's Linkable Spontaneous Anonymous Group signatures) over the
// NIST P-256 curve, using only the standard library. It provides the Step-2
// (Gen) and Step-3 (Ver) halves of the RS scheme the paper builds on:
//
//   - a signer proves knowledge of the private key of exactly one public key
//     in a ring without revealing which,
//   - every signature carries a key image I = x·Hp(P) that is unique per
//     key, so a second spend of the same token is detected by key-image
//     equality without learning which token was spent.
//
// The DA-MS algorithms themselves never touch this package; it exists so the
// repository exercises the full pipeline (select mixins → sign → verify →
// reject double spends) end to end, exactly as a blockchain node would.
package ringsig

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash"
	"io"
	"math/big"
)

// Curve is the group all keys and signatures live in.
var Curve = elliptic.P256()

// Point is an elliptic curve point in affine coordinates.
type Point struct {
	X, Y *big.Int
}

// IsZero reports whether the point is the (unset) identity placeholder.
func (p Point) IsZero() bool { return p.X == nil || p.Y == nil }

// Equal reports whether two points are the same.
func (p Point) Equal(q Point) bool {
	if p.IsZero() || q.IsZero() {
		return p.IsZero() && q.IsZero()
	}
	return p.X.Cmp(q.X) == 0 && p.Y.Cmp(q.Y) == 0
}

// Bytes returns the uncompressed SEC1 encoding.
func (p Point) Bytes() []byte {
	if p.IsZero() {
		return []byte{0}
	}
	return elliptic.Marshal(Curve, p.X, p.Y)
}

// PrivateKey is a scalar x with its public point P = x·G.
type PrivateKey struct {
	// D is the private scalar. Secret: it must never reach logs, error
	// strings, JSON encoding or metric labels (secretflow enforces this).
	//
	//tmlint:secret
	D      *big.Int
	Public Point
}

// GenerateKey creates a fresh keypair from the given entropy source
// (crypto/rand.Reader in production, a deterministic reader in tests).
func GenerateKey(rng io.Reader) (*PrivateKey, error) {
	key, err := ecdsa.GenerateKey(Curve, rng)
	if err != nil {
		return nil, fmt.Errorf("ringsig: keygen: %w", err)
	}
	return &PrivateKey{
		D:      key.D,
		Public: Point{X: key.PublicKey.X, Y: key.PublicKey.Y},
	}, nil
}

// KeyImage computes I = x·Hp(P), the linkability tag. Two signatures by the
// same key always share the image; images of different keys collide only
// with negligible probability. The multiplication involves the private
// scalar, so it stays on the stock constant-time ScalarMult — never the
// variable-time verification kernels — with the scalar encoded fixed-width
// (Bytes() would shorten the encoding for scalars with leading zero bytes).
func (k *PrivateKey) KeyImage() Point {
	hp := hashToPoint(k.Public)
	var d [32]byte
	k.D.FillBytes(d[:])
	x, y := Curve.ScalarMult(hp.X, hp.Y, d[:])
	return Point{X: x, Y: y}
}

// Signature is a bLSAG ring signature: the initial challenge c₀ plus one
// response scalar per ring member, and the key image.
type Signature struct {
	C0    *big.Int
	S     []*big.Int
	Image Point
}

// Errors returned by signing and verification.
var (
	ErrInvalid     = errors.New("ringsig: invalid signature")
	ErrNotInRing   = errors.New("ringsig: signer's public key not in ring")
	ErrSmallRing   = errors.New("ringsig: ring must contain at least 2 keys")
	ErrBadRingKeys = errors.New("ringsig: ring contains an invalid point")
)

// Sign produces a ring signature over msg with the given ring of public
// keys. signerIdx is the position of sk's public key inside ring. rng
// supplies the per-signature nonces.
func Sign(rng io.Reader, sk *PrivateKey, ring []Point, signerIdx int, msg []byte) (*Signature, error) {
	n := len(ring)
	if n < 2 {
		return nil, ErrSmallRing
	}
	if signerIdx < 0 || signerIdx >= n || !ring[signerIdx].Equal(sk.Public) {
		return nil, ErrNotInRing
	}
	for _, p := range ring {
		if p.IsZero() || !Curve.IsOnCurve(p.X, p.Y) {
			return nil, ErrBadRingKeys
		}
	}
	order := Curve.Params().N
	image := sk.KeyImage()

	alpha, err := randScalar(rng)
	if err != nil {
		return nil, err
	}
	s := make([]*big.Int, n)
	c := make([]*big.Int, n)

	// Start the ring at the signer: c_{π+1} = H(msg, α·G, α·Hp(P_π)).
	// α is a secret nonce, so these two multiplications use the stock
	// constant-time ops with fixed-width scalar encoding — the
	// variable-time kernels below only ever see the public decoy scalars.
	var ab [32]byte
	alpha.FillBytes(ab[:])
	agx, agy := Curve.ScalarBaseMult(ab[:])
	hpPi := hashToPoint(ring[signerIdx])
	ahx, ahy := Curve.ScalarMult(hpPi.X, hpPi.Y, ab[:])
	c[(signerIdx+1)%n] = challenge(msg, Point{agx, agy}, Point{ahx, ahy})

	// Walk the ring with random responses for every other member:
	// c_{i+1} = H(msg, s_i·G + c_i·P_i, s_i·Hp(P_i) + c_i·I).
	for off := 1; off < n; off++ {
		i := (signerIdx + off) % n
		s[i], err = randResponse(rng)
		if err != nil {
			return nil, err
		}
		c[(i+1)%n] = ringStep(msg, ring[i], image, s[i], c[i], nil)
	}

	// Close the ring: s_π = α − c_π·x (mod N).
	sPi := new(big.Int).Mul(c[signerIdx], sk.D)
	sPi.Sub(alpha, sPi)
	sPi.Mod(sPi, order)
	s[signerIdx] = sPi

	return &Signature{C0: c[0], S: s, Image: image}, nil
}

// Verify checks the signature over msg against the ring. It is a thin
// wrapper over a cache-less Engine: same decisions, kernel-accelerated
// chain. Callers verifying many signatures should hold an Engine (or call
// VerifyBatch) so the hash-to-point memo and transcript cache amortise.
func Verify(sig *Signature, ring []Point, msg []byte) error {
	return defaultEngine.Verify(sig, ring, msg)
}

// Linked reports whether two signatures were produced by the same private
// key (same key image) — the double-spend check a verifier node performs.
func Linked(a, b *Signature) bool {
	if a == nil || b == nil {
		return false
	}
	return a.Image.Equal(b.Image)
}

// challenge hashes the transcript into a scalar mod N.
func challenge(msg []byte, l, r Point) *big.Int {
	h := sha256.New()
	hashWrite(h, []byte("tokenmagic/blsag/v1"), msg, l.Bytes(), r.Bytes())
	d := new(big.Int).SetBytes(h.Sum(nil))
	return d.Mod(d, Curve.Params().N)
}

// hashWrite absorbs parts into h. hash.Hash documents that Write never
// returns an error, so a failure can only mean a broken implementation —
// in a signature transcript that must be fatal, not silent.
func hashWrite(h hash.Hash, parts ...[]byte) {
	for _, p := range parts {
		if _, err := h.Write(p); err != nil {
			panic("ringsig: hash write failed: " + err.Error())
		}
	}
}

// randScalar draws a uniform scalar in [1, N-1]. Its result is a
// per-signature nonce or response scalar; leaking one alongside the
// challenge recovers the private key, so the result is secret-tainted.
//
//tmlint:secret
func randScalar(rng io.Reader) (*big.Int, error) {
	order := Curve.Params().N
	for {
		k, err := rand.Int(rng, order)
		if err != nil {
			return nil, fmt.Errorf("ringsig: entropy: %w", err)
		}
		if k.Sign() > 0 {
			return k, nil
		}
	}
}

// randResponse draws a uniform decoy response scalar. It is the same draw
// as randScalar, but the result is NOT secret-tainted: decoy responses are
// published verbatim in the signature (public by construction), so they may
// legitimately flow into the variable-time verification kernels during
// signing. Declassification happens here, at an explicit named boundary,
// rather than by suppressing cttime at every decoy call site.
func randResponse(rng io.Reader) (*big.Int, error) {
	return randScalar(rng)
}
