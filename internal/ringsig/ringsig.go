// Package ringsig implements a linkable ring signature scheme in the style
// of bLSAG (back's Linkable Spontaneous Anonymous Group signatures) over the
// NIST P-256 curve, using only the standard library. It provides the Step-2
// (Gen) and Step-3 (Ver) halves of the RS scheme the paper builds on:
//
//   - a signer proves knowledge of the private key of exactly one public key
//     in a ring without revealing which,
//   - every signature carries a key image I = x·Hp(P) that is unique per
//     key, so a second spend of the same token is detected by key-image
//     equality without learning which token was spent.
//
// The DA-MS algorithms themselves never touch this package; it exists so the
// repository exercises the full pipeline (select mixins → sign → verify →
// reject double spends) end to end, exactly as a blockchain node would.
package ringsig

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash"
	"io"
	"math/big"
)

// Curve is the group all keys and signatures live in.
var Curve = elliptic.P256()

// Point is an elliptic curve point in affine coordinates.
type Point struct {
	X, Y *big.Int
}

// IsZero reports whether the point is the (unset) identity placeholder.
func (p Point) IsZero() bool { return p.X == nil || p.Y == nil }

// Equal reports whether two points are the same.
func (p Point) Equal(q Point) bool {
	if p.IsZero() || q.IsZero() {
		return p.IsZero() && q.IsZero()
	}
	return p.X.Cmp(q.X) == 0 && p.Y.Cmp(q.Y) == 0
}

// Bytes returns the uncompressed SEC1 encoding.
func (p Point) Bytes() []byte {
	if p.IsZero() {
		return []byte{0}
	}
	return elliptic.Marshal(Curve, p.X, p.Y)
}

// PrivateKey is a scalar x with its public point P = x·G.
type PrivateKey struct {
	// D is the private scalar. Secret: it must never reach logs, error
	// strings, JSON encoding or metric labels (secretflow enforces this).
	//
	//tmlint:secret
	D      *big.Int
	Public Point
}

// GenerateKey creates a fresh keypair from the given entropy source
// (crypto/rand.Reader in production, a deterministic reader in tests).
func GenerateKey(rng io.Reader) (*PrivateKey, error) {
	key, err := ecdsa.GenerateKey(Curve, rng)
	if err != nil {
		return nil, fmt.Errorf("ringsig: keygen: %w", err)
	}
	return &PrivateKey{
		D:      key.D,
		Public: Point{X: key.PublicKey.X, Y: key.PublicKey.Y},
	}, nil
}

// KeyImage computes I = x·Hp(P), the linkability tag. Two signatures by the
// same key always share the image; images of different keys collide only
// with negligible probability.
func (k *PrivateKey) KeyImage() Point {
	hp := hashToPoint(k.Public)
	x, y := Curve.ScalarMult(hp.X, hp.Y, k.D.Bytes())
	return Point{X: x, Y: y}
}

// Signature is a bLSAG ring signature: the initial challenge c₀ plus one
// response scalar per ring member, and the key image.
type Signature struct {
	C0    *big.Int
	S     []*big.Int
	Image Point
}

// Errors returned by signing and verification.
var (
	ErrInvalid     = errors.New("ringsig: invalid signature")
	ErrNotInRing   = errors.New("ringsig: signer's public key not in ring")
	ErrSmallRing   = errors.New("ringsig: ring must contain at least 2 keys")
	ErrBadRingKeys = errors.New("ringsig: ring contains an invalid point")
)

// Sign produces a ring signature over msg with the given ring of public
// keys. signerIdx is the position of sk's public key inside ring. rng
// supplies the per-signature nonces.
func Sign(rng io.Reader, sk *PrivateKey, ring []Point, signerIdx int, msg []byte) (*Signature, error) {
	n := len(ring)
	if n < 2 {
		return nil, ErrSmallRing
	}
	if signerIdx < 0 || signerIdx >= n || !ring[signerIdx].Equal(sk.Public) {
		return nil, ErrNotInRing
	}
	for _, p := range ring {
		if p.IsZero() || !Curve.IsOnCurve(p.X, p.Y) {
			return nil, ErrBadRingKeys
		}
	}
	order := Curve.Params().N
	image := sk.KeyImage()

	alpha, err := randScalar(rng)
	if err != nil {
		return nil, err
	}
	s := make([]*big.Int, n)
	c := make([]*big.Int, n)

	// Start the ring at the signer: c_{π+1} = H(msg, α·G, α·Hp(P_π)).
	agx, agy := Curve.ScalarBaseMult(alpha.Bytes())
	hpPi := hashToPoint(ring[signerIdx])
	ahx, ahy := Curve.ScalarMult(hpPi.X, hpPi.Y, alpha.Bytes())
	c[(signerIdx+1)%n] = challenge(msg, Point{agx, agy}, Point{ahx, ahy})

	// Walk the ring with random responses for every other member:
	// c_{i+1} = H(msg, s_i·G + c_i·P_i, s_i·Hp(P_i) + c_i·I).
	for off := 1; off < n; off++ {
		i := (signerIdx + off) % n
		s[i], err = randScalar(rng)
		if err != nil {
			return nil, err
		}
		c[(i+1)%n] = ringStep(msg, ring[i], image, s[i], c[i])
	}

	// Close the ring: s_π = α − c_π·x (mod N).
	sPi := new(big.Int).Mul(c[signerIdx], sk.D)
	sPi.Sub(alpha, sPi)
	sPi.Mod(sPi, order)
	s[signerIdx] = sPi

	return &Signature{C0: c[0], S: s, Image: image}, nil
}

// Verify checks the signature over msg against the ring.
func Verify(sig *Signature, ring []Point, msg []byte) error {
	n := len(ring)
	if sig == nil || n < 2 || len(sig.S) != n || sig.C0 == nil {
		return ErrInvalid
	}
	if sig.Image.IsZero() || !Curve.IsOnCurve(sig.Image.X, sig.Image.Y) {
		return ErrInvalid
	}
	for _, p := range ring {
		if p.IsZero() || !Curve.IsOnCurve(p.X, p.Y) {
			return ErrBadRingKeys
		}
	}
	order := Curve.Params().N
	c := new(big.Int).Set(sig.C0)
	for i := 0; i < n; i++ {
		if sig.S[i] == nil || sig.S[i].Sign() < 0 || sig.S[i].Cmp(order) >= 0 {
			return ErrInvalid
		}
		c = ringStep(msg, ring[i], sig.Image, sig.S[i], c)
	}
	if c.Cmp(sig.C0) != 0 {
		return ErrInvalid
	}
	return nil
}

// Linked reports whether two signatures were produced by the same private
// key (same key image) — the double-spend check a verifier node performs.
func Linked(a, b *Signature) bool {
	if a == nil || b == nil {
		return false
	}
	return a.Image.Equal(b.Image)
}

// ringStep computes c_{i+1} = H(msg, s·G + c·P, s·Hp(P) + c·I).
func ringStep(msg []byte, pub, image Point, s, c *big.Int) *big.Int {
	sgx, sgy := Curve.ScalarBaseMult(s.Bytes())
	cpx, cpy := Curve.ScalarMult(pub.X, pub.Y, c.Bytes())
	lx, ly := Curve.Add(sgx, sgy, cpx, cpy)

	hp := hashToPoint(pub)
	shx, shy := Curve.ScalarMult(hp.X, hp.Y, s.Bytes())
	cix, ciy := Curve.ScalarMult(image.X, image.Y, c.Bytes())
	rx, ry := Curve.Add(shx, shy, cix, ciy)

	return challenge(msg, Point{lx, ly}, Point{rx, ry})
}

// challenge hashes the transcript into a scalar mod N.
func challenge(msg []byte, l, r Point) *big.Int {
	h := sha256.New()
	hashWrite(h, []byte("tokenmagic/blsag/v1"), msg, l.Bytes(), r.Bytes())
	d := new(big.Int).SetBytes(h.Sum(nil))
	return d.Mod(d, Curve.Params().N)
}

// hashWrite absorbs parts into h. hash.Hash documents that Write never
// returns an error, so a failure can only mean a broken implementation —
// in a signature transcript that must be fatal, not silent.
func hashWrite(h hash.Hash, parts ...[]byte) {
	for _, p := range parts {
		if _, err := h.Write(p); err != nil {
			panic("ringsig: hash write failed: " + err.Error())
		}
	}
}

// hashToPoint maps a public key to a curve point with unknown discrete log
// relative to G, via iterated hash-and-increment on the x-coordinate.
func hashToPoint(p Point) Point {
	seed := sha256.Sum256(append([]byte("tokenmagic/hp/v1"), p.Bytes()...))
	params := Curve.Params()
	x := new(big.Int).SetBytes(seed[:])
	x.Mod(x, params.P)
	one := big.NewInt(1)
	for i := 0; i < 1000; i++ {
		if y := ySquaredRoot(x); y != nil {
			return Point{X: new(big.Int).Set(x), Y: y}
		}
		x.Add(x, one)
		x.Mod(x, params.P)
	}
	// Unreachable in practice: each x has ~1/2 chance of being on curve.
	panic("ringsig: hash-to-point failed after 1000 attempts")
}

// ySquaredRoot returns a y with y² = x³ − 3x + b (mod p) if one exists.
func ySquaredRoot(x *big.Int) *big.Int {
	params := Curve.Params()
	// y² = x³ - 3x + b mod p
	y2 := new(big.Int).Mul(x, x)
	y2.Mul(y2, x)
	threeX := new(big.Int).Lsh(x, 1)
	threeX.Add(threeX, x)
	y2.Sub(y2, threeX)
	y2.Add(y2, params.B)
	y2.Mod(y2, params.P)
	y := new(big.Int).ModSqrt(y2, params.P)
	if y == nil {
		return nil
	}
	// Verify (ModSqrt can misfire only if y2 was not a residue, in which
	// case it returns nil; this is belt and braces).
	check := new(big.Int).Mul(y, y)
	check.Mod(check, params.P)
	if check.Cmp(y2) != 0 {
		return nil
	}
	return y
}

// randScalar draws a uniform scalar in [1, N-1]. Its result is a
// per-signature nonce or response scalar; leaking one alongside the
// challenge recovers the private key, so the result is secret-tainted.
//
//tmlint:secret
func randScalar(rng io.Reader) (*big.Int, error) {
	order := Curve.Params().N
	for {
		k, err := rand.Int(rng, order)
		if err != nil {
			return nil, fmt.Errorf("ringsig: entropy: %w", err)
		}
		if k.Sign() > 0 {
			return k, nil
		}
	}
}
