package ringsig

import (
	"context"
	"io"

	"tokenmagic/internal/obs/trace"
)

// Context-aware wrappers: the crypto itself neither blocks nor cancels, so
// ctx only carries the request's trace — signing and verification land in
// "sign"/"verify" spans with the ring size, making the crypto share of a
// spend's latency visible next to the solver stages.

// SignCtx is Sign recorded as a "sign" span of the trace in ctx.
func SignCtx(ctx context.Context, rng io.Reader, sk *PrivateKey, ring []Point, signerIdx int, msg []byte) (*Signature, error) {
	sp := trace.StartChild(ctx, "sign")
	defer sp.End()
	sp.AnnotateInt("ring_size", int64(len(ring)))
	sig, err := Sign(rng, sk, ring, signerIdx, msg)
	if err != nil {
		sp.Annotate("outcome", "error")
	}
	return sig, err
}

// VerifyCtx is Verify recorded as a "verify-sig" span of the trace in ctx.
// The span name is distinct from the framework's Step-3 "verify" stage so
// the two checks stay separable in the per-stage aggregates.
func VerifyCtx(ctx context.Context, sig *Signature, ring []Point, msg []byte) error {
	return defaultEngine.VerifyCtx(ctx, sig, ring, msg)
}

// VerifyCtx is Engine.Verify recorded as a "verify-sig" span of the trace
// in ctx.
func (e *Engine) VerifyCtx(ctx context.Context, sig *Signature, ring []Point, msg []byte) error {
	sp := trace.StartChild(ctx, "verify-sig")
	defer sp.End()
	sp.AnnotateInt("ring_size", int64(len(ring)))
	err := e.Verify(sig, ring, msg)
	if err != nil {
		sp.Annotate("outcome", "invalid")
	}
	return err
}

// VerifyBatchCtx is VerifyBatch recorded as a "verify-batch" span carrying
// the batch size and how much of it the caches settled.
func (e *Engine) VerifyBatchCtx(ctx context.Context, reqs []VerifyRequest) BatchResult {
	sp := trace.StartChild(ctx, "verify-batch")
	defer sp.End()
	sp.AnnotateInt("batch_size", int64(len(reqs)))
	res := e.VerifyBatch(ctx, reqs)
	sp.AnnotateInt("cache_hits", int64(res.CacheHits))
	if !res.OK() {
		sp.Annotate("outcome", "invalid")
	}
	return res
}
