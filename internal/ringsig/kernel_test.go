package ringsig

// Differential tests: the kernel layer against the stock-curve
// implementation. The contract is exact equality — byte-identical
// signatures from the same rng stream, identical accept/reject decisions
// (including error identity) on valid and tampered inputs, bit-identical
// point results from every multiplication kernel, on both the fused
// dispatch path and the Strauss/comb fallback engine.

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"math/big"
	"testing"
)

// detReader is a deterministic byte stream (sha256 counter mode) so two
// Sign calls can consume identical entropy.
type detReader struct {
	seed [32]byte
	ctr  uint64
	buf  []byte
}

func newDetReader(label string) *detReader {
	return &detReader{seed: sha256.Sum256([]byte(label))}
}

func (r *detReader) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(r.buf) == 0 {
			var block [40]byte
			copy(block[:32], r.seed[:])
			binary.BigEndian.PutUint64(block[32:], r.ctr)
			r.ctr++
			sum := sha256.Sum256(block[:])
			r.buf = sum[:]
		}
		c := copy(p[n:], r.buf)
		r.buf = r.buf[c:]
		n += c
	}
	return n, nil
}

// kernelScalars is the scalar edge-case set every kernel test sweeps in
// addition to random draws.
func kernelScalars(t testing.TB) []*big.Int {
	t.Helper()
	n := Curve.Params().N
	edge := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		big.NewInt(15),
		big.NewInt(1 << 30),
		new(big.Int).Sub(n, big.NewInt(1)),
		new(big.Int).Rsh(n, 1),
		new(big.Int).Lsh(big.NewInt(1), 200), // 56 leading zero bytes exercise FillBytes widths
	}
	for i := 0; i < 6; i++ {
		k, err := rand.Int(rand.Reader, n)
		if err != nil {
			t.Fatal(err)
		}
		edge = append(edge, k)
	}
	return edge
}

func stockPairBase(s, c *big.Int, pub Point) Point {
	sgx, sgy := Curve.ScalarBaseMult(s.Bytes())
	cpx, cpy := Curve.ScalarMult(pub.X, pub.Y, c.Bytes())
	x, y := Curve.Add(sgx, sgy, cpx, cpy)
	return Point{x, y}
}

func stockPair(a *big.Int, q Point, b *big.Int, r Point) Point {
	ax, ay := Curve.ScalarMult(q.X, q.Y, a.Bytes())
	bx, by := Curve.ScalarMult(r.X, r.Y, b.Bytes())
	x, y := Curve.Add(ax, ay, bx, by)
	return Point{x, y}
}

func TestKernelPairsMatchStock(t *testing.T) {
	_, ring := genRing(t, 3)
	p, q := ring[0], ring[1]
	for _, s := range kernelScalars(t) {
		for _, c := range kernelScalars(t) {
			if got, want := mulPairBase(s, c, p), stockPairBase(s, c, p); !got.Equal(want) {
				t.Fatalf("mulPairBase(%v, %v) = %v, want %v", s, c, got, want)
			}
			if got, want := mulPair(s, p, c, q), stockPair(s, p, c, q); !got.Equal(want) {
				t.Fatalf("mulPair(%v, %v) = %v, want %v", s, c, got, want)
			}
		}
	}
}

// TestFallbackEngineMatchesStock drives the Strauss/comb engine directly,
// so the no-assembly dispatch path is proven even on platforms where the
// kernels would pick the fused CombinedMult.
func TestFallbackEngineMatchesStock(t *testing.T) {
	_, ring := genRing(t, 3)
	p, q := ring[0], ring[1]
	for _, s := range kernelScalars(t) {
		for _, c := range kernelScalars(t) {
			if got, want := strausBaseVar(s, c, p), stockPairBase(s, c, p); !got.Equal(want) {
				t.Fatalf("strausBaseVar(%v, %v) = %v, want %v", s, c, got, want)
			}
			if got, want := strausVarVar(s, p, c, q), stockPair(s, p, c, q); !got.Equal(want) {
				t.Fatalf("strausVarVar(%v, %v) = %v, want %v", s, c, got, want)
			}
		}
	}
}

func TestCombTableAgainstScalarBaseMult(t *testing.T) {
	// The comb alone (no variable-point digits) must reproduce s·G.
	zero := big.NewInt(0)
	g := Point{Curve.Params().Gx, Curve.Params().Gy}
	for _, s := range kernelScalars(t) {
		want := func() Point {
			x, y := Curve.ScalarBaseMult(s.Bytes())
			return Point{x, y}
		}()
		if got := strausBaseVar(s, zero, g); !got.Equal(want) {
			t.Fatalf("comb: %v·G = %v, want %v", s, got, want)
		}
	}
}

func TestHashToPointMatchesReference(t *testing.T) {
	for i := 0; i < 64; i++ {
		k, err := GenerateKey(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		fast := hashToPoint(k.Public)
		ref := stockHashToPoint(k.Public)
		if !fast.Equal(ref) {
			t.Fatalf("hashToPoint(%v) = %v, reference = %v", k.Public, fast, ref)
		}
		if fast.Y.Bit(0) != 0 {
			t.Fatalf("hashToPoint must pick the even root, got odd y %v", fast.Y)
		}
		if !Curve.IsOnCurve(fast.X, fast.Y) {
			t.Fatal("hashToPoint result off curve")
		}
	}
}

// TestSignByteIdenticalToStock: same keys, same entropy stream — the
// kernel-path Sign and the stock-path StockSign must emit byte-identical
// signatures.
func TestSignByteIdenticalToStock(t *testing.T) {
	keyRng := newDetReader("keys")
	keys := make([]*PrivateKey, 8)
	ring := make([]Point, 8)
	for i := range keys {
		k, err := GenerateKey(keyRng)
		if err != nil {
			t.Fatal(err)
		}
		keys[i], ring[i] = k, k.Public
	}
	msg := []byte("differential signing transcript")
	for idx := range keys {
		a, err := Sign(newDetReader("nonces"), keys[idx], ring, idx, msg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := StockSign(newDetReader("nonces"), keys[idx], ring, idx, msg)
		if err != nil {
			t.Fatal(err)
		}
		if a.C0.Cmp(b.C0) != 0 {
			t.Fatalf("idx %d: C0 differs: %v vs %v", idx, a.C0, b.C0)
		}
		if !a.Image.Equal(b.Image) {
			t.Fatalf("idx %d: key image differs", idx)
		}
		for i := range a.S {
			if a.S[i].Cmp(b.S[i]) != 0 {
				t.Fatalf("idx %d: s[%d] differs: %v vs %v", idx, i, a.S[i], b.S[i])
			}
		}
		if err := StockVerify(a, ring, msg); err != nil {
			t.Fatalf("stock verify of kernel signature: %v", err)
		}
		if err := Verify(b, ring, msg); err != nil {
			t.Fatalf("kernel verify of stock signature: %v", err)
		}
	}
}

// mutateSig returns tampered variants of a valid signature (with fresh
// backing big.Ints so the original stays intact), each of which both paths
// must reject identically.
func mutateSig(sig *Signature, ring []Point) []*Signature {
	clone := func() *Signature {
		c := &Signature{C0: new(big.Int).Set(sig.C0), Image: sig.Image, S: make([]*big.Int, len(sig.S))}
		for i, s := range sig.S {
			c.S[i] = new(big.Int).Set(s)
		}
		return c
	}
	n := Curve.Params().N
	bumpC0 := clone()
	bumpC0.C0.Add(bumpC0.C0, big.NewInt(1))
	bumpC0.C0.Mod(bumpC0.C0, n)
	bumpS := clone()
	bumpS.S[1].Add(bumpS.S[1], big.NewInt(1))
	bumpS.S[1].Mod(bumpS.S[1], n)
	zeroS := clone()
	zeroS.S[0].SetInt64(0)
	hugeC0 := clone()
	hugeC0.C0.Lsh(big.NewInt(1), 300)
	outS := clone()
	outS.S[2].Set(n)
	badImage := clone()
	badImage.Image = hashToPoint(ring[0]) // on-curve but wrong image
	return []*Signature{bumpC0, bumpS, zeroS, hugeC0, outS, badImage}
}

func TestVerifyDecisionsMatchStock(t *testing.T) {
	keys, ring := genRing(t, 6)
	msg := []byte("decision parity")
	sig, err := Sign(rand.Reader, keys[3], ring, 3, msg)
	if err != nil {
		t.Fatal(err)
	}
	checkParity := func(s *Signature, r []Point, m []byte) {
		t.Helper()
		kerr := Verify(s, r, m)
		serr := StockVerify(s, r, m)
		if (kerr == nil) != (serr == nil) {
			t.Fatalf("decision mismatch: kernel=%v stock=%v", kerr, serr)
		}
		if kerr != nil && !errors.Is(kerr, serr) && !errors.Is(serr, kerr) {
			t.Fatalf("error identity mismatch: kernel=%v stock=%v", kerr, serr)
		}
	}
	checkParity(sig, ring, msg)
	checkParity(sig, ring, []byte("wrong message"))
	for _, bad := range mutateSig(sig, ring) {
		checkParity(bad, ring, msg)
	}
	// Off-curve ring member.
	badRing := append([]Point{}, ring...)
	badRing[4] = Point{X: big.NewInt(7), Y: big.NewInt(9)}
	checkParity(sig, badRing, msg)
}

func TestVerifyBatchNegatives(t *testing.T) {
	keys, ring := genRing(t, 5)
	msg := func(i int) []byte { return []byte{byte(i), 'm'} }
	reqs := make([]VerifyRequest, 8)
	sigs := make([]*Signature, 8)
	for i := range reqs {
		sig, err := Sign(rand.Reader, keys[i%5], ring, i%5, msg(i))
		if err != nil {
			t.Fatal(err)
		}
		sigs[i] = sig
		reqs[i] = VerifyRequest{Sig: sig, Ring: ring, Msg: msg(i)}
	}
	e := &Engine{Workers: 2}

	t.Run("all valid", func(t *testing.T) {
		res := e.VerifyBatch(context.Background(), reqs)
		if !res.OK() || res.FirstFailure != -1 {
			t.Fatalf("valid batch rejected: %+v", res)
		}
	})

	t.Run("tampered s[i]", func(t *testing.T) {
		bad := append([]VerifyRequest{}, reqs...)
		tampered := mutateSig(sigs[3], ring)[1] // bumped s[1]
		bad[3] = VerifyRequest{Sig: tampered, Ring: ring, Msg: msg(3)}
		res := e.VerifyBatch(context.Background(), bad)
		if res.FirstFailure != 3 {
			t.Fatalf("FirstFailure = %d, want 3", res.FirstFailure)
		}
		if !errors.Is(res.Errs[3], ErrInvalid) {
			t.Fatalf("err = %v, want ErrInvalid", res.Errs[3])
		}
		if res.Rechecked == 0 {
			t.Fatal("kernel reject must be confirmed on the stock path")
		}
		for i, err := range res.Errs {
			if i != 3 && err != nil {
				t.Fatalf("index %d wrongly rejected: %v", i, err)
			}
		}
	})

	t.Run("swapped key images", func(t *testing.T) {
		bad := append([]VerifyRequest{}, reqs...)
		a := &Signature{C0: sigs[1].C0, S: sigs[1].S, Image: sigs[2].Image}
		b := &Signature{C0: sigs[2].C0, S: sigs[2].S, Image: sigs[1].Image}
		bad[1] = VerifyRequest{Sig: a, Ring: ring, Msg: msg(1)}
		bad[2] = VerifyRequest{Sig: b, Ring: ring, Msg: msg(2)}
		res := e.VerifyBatch(context.Background(), bad)
		if res.FirstFailure != 1 {
			t.Fatalf("FirstFailure = %d, want 1", res.FirstFailure)
		}
		if res.Errs[1] == nil || res.Errs[2] == nil {
			t.Fatalf("swapped images must fail both: %v, %v", res.Errs[1], res.Errs[2])
		}
	})

	t.Run("off-curve member mid-batch", func(t *testing.T) {
		bad := append([]VerifyRequest{}, reqs...)
		badRing := append([]Point{}, ring...)
		badRing[2] = Point{X: big.NewInt(3), Y: big.NewInt(5)}
		bad[4] = VerifyRequest{Sig: sigs[4], Ring: badRing, Msg: msg(4)}
		res := e.VerifyBatch(context.Background(), bad)
		if res.FirstFailure != 4 {
			t.Fatalf("FirstFailure = %d, want 4", res.FirstFailure)
		}
		if !errors.Is(res.Errs[4], ErrBadRingKeys) {
			t.Fatalf("err = %v, want ErrBadRingKeys", res.Errs[4])
		}
	})

	t.Run("worker counts agree", func(t *testing.T) {
		bad := append([]VerifyRequest{}, reqs...)
		bad[5] = VerifyRequest{Sig: mutateSig(sigs[5], ring)[0], Ring: ring, Msg: msg(5)}
		// The single-worker run is the baseline, so it must go first —
		// iterating a map here left base unset whenever another width drew
		// the first slot, indexing the nil Errs slice.
		var base BatchResult
		for _, w := range []int{1, 2, 4, 8} {
			res := (&Engine{Workers: w}).VerifyBatch(context.Background(), bad)
			if w == 1 {
				base = res
			}
			if res.FirstFailure != 5 {
				t.Fatalf("workers=%d: FirstFailure = %d, want 5", w, res.FirstFailure)
			}
			for i := range res.Errs {
				if (res.Errs[i] == nil) != (base.Errs[i] == nil) {
					t.Fatalf("workers=%d: decision for %d differs", w, i)
				}
			}
		}
	})

	t.Run("cancelled context", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res := e.VerifyBatch(ctx, reqs)
		for i, err := range res.Errs {
			if err == nil {
				t.Fatalf("index %d decided despite cancelled ctx", i)
			}
		}
		if res.OK() {
			t.Fatal("cancelled batch cannot be OK")
		}
	})
}

func TestEngineCaches(t *testing.T) {
	keys, ring := genRing(t, 4)
	msg := []byte("cached")
	sig, err := Sign(rand.Reader, keys[0], ring, 0, msg)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Hp: NewHpCache(), Seen: NewSigCache(128), Workers: 1}
	e.Hp.Precompute(ring)
	if e.Hp.Len() != len(ring) {
		t.Fatalf("Precompute: Len = %d, want %d", e.Hp.Len(), len(ring))
	}
	reqs := []VerifyRequest{{Sig: sig, Ring: ring, Msg: msg}}
	if res := e.VerifyBatch(context.Background(), reqs); !res.OK() || res.CacheHits != 0 {
		t.Fatalf("first pass: %+v", res)
	}
	res := e.VerifyBatch(context.Background(), reqs)
	if !res.OK() || res.CacheHits != 1 {
		t.Fatalf("second pass must hit the transcript cache: %+v", res)
	}
	// A tampered variant of a cached signature must still be rejected.
	for _, bad := range mutateSig(sig, ring) {
		if err := e.Verify(bad, ring, msg); err == nil {
			t.Fatal("tampered signature accepted after caching the valid one")
		}
	}
	// Same transcript under a different message is a different key.
	if err := e.Verify(sig, ring, []byte("other")); err == nil {
		t.Fatal("cache must not leak across messages")
	}
}

func TestSigCacheRotation(t *testing.T) {
	c := NewSigCache(8)
	key := func(i int) [32]byte { return sha256.Sum256([]byte{byte(i)}) }
	for i := 0; i < 64; i++ {
		c.Record(key(i))
	}
	if c.Len() > 8 {
		t.Fatalf("cache exceeded bound: %d", c.Len())
	}
	if !c.Seen(key(63)) {
		t.Fatal("most recent entry must survive rotation")
	}
	if c.Seen(key(0)) {
		t.Fatal("oldest entry should have rotated out")
	}
	var nilCache *SigCache
	if nilCache.Seen(key(1)) {
		t.Fatal("nil cache never hits")
	}
	nilCache.Record(key(1)) // must not panic
}

func TestLayerPointsMatchStock(t *testing.T) {
	_, ring := genRing(t, 2)
	for _, s := range kernelScalars(t) {
		for _, c := range kernelScalars(t) {
			l1, r1 := layerPoints(ring[0], ring[1], s, c)
			l2, r2 := stockLayerPoints(ring[0], ring[1], s, c)
			if !l1.Equal(l2) || !r1.Equal(r2) {
				t.Fatalf("layerPoints(%v, %v) mismatch", s, c)
			}
		}
	}
}

// FuzzVerifyBatchEquivalence asserts VerifyBatch ≡ per-signature
// StockVerify on random valid/invalid mixes: the fuzzer controls which
// requests are tampered and how.
func FuzzVerifyBatchEquivalence(f *testing.F) {
	keyRng := newDetReader("fuzz-keys")
	keys := make([]*PrivateKey, 4)
	ring := make([]Point, 4)
	for i := range keys {
		k, err := GenerateKey(keyRng)
		if err != nil {
			f.Fatal(err)
		}
		keys[i], ring[i] = k, k.Public
	}
	f.Add(uint16(0x0000), uint8(2), int64(1))
	f.Add(uint16(0xffff), uint8(3), int64(2))
	f.Add(uint16(0x5a5a), uint8(1), int64(3))
	f.Fuzz(func(t *testing.T, tamperMask uint16, workers uint8, seed int64) {
		rng := newDetReader("fuzz-" + string(rune(seed)))
		const batch = 6
		reqs := make([]VerifyRequest, batch)
		for i := range reqs {
			idx := i % len(keys)
			msg := []byte{byte(i), byte(seed)}
			sig, err := Sign(rng, keys[idx], ring, idx, msg)
			if err != nil {
				t.Fatal(err)
			}
			if tamperMask&(1<<uint(i)) != 0 {
				muts := mutateSig(sig, ring)
				sig = muts[int(tamperMask>>8)%len(muts)]
			}
			reqs[i] = VerifyRequest{Sig: sig, Ring: ring, Msg: msg}
		}
		e := &Engine{Workers: int(workers%8) + 1, Seen: NewSigCache(64)}
		res := e.VerifyBatch(context.Background(), reqs)
		firstFail := -1
		for i, r := range reqs {
			want := StockVerify(r.Sig, r.Ring, r.Msg)
			if (res.Errs[i] == nil) != (want == nil) {
				t.Fatalf("index %d: batch=%v stock=%v", i, res.Errs[i], want)
			}
			if want != nil && firstFail == -1 {
				firstFail = i
			}
		}
		if res.FirstFailure != firstFail {
			t.Fatalf("FirstFailure = %d, want %d", res.FirstFailure, firstFail)
		}
		// Second pass over the same batch: cache hits must not change
		// decisions.
		res2 := e.VerifyBatch(context.Background(), reqs)
		for i := range reqs {
			if (res.Errs[i] == nil) != (res2.Errs[i] == nil) {
				t.Fatalf("index %d: cached pass flipped decision", i)
			}
		}
	})
}
