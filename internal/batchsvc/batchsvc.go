// Package batchsvc implements the full-node/light-node split of Section 4:
// full nodes hold the whole chain and its batch partition; light nodes do
// not store chain data and instead query the batch a token belongs to — the
// mixin universe plus the related rings — before running mixin selection
// locally.
//
// The wire protocol is deliberately plain HTTP + JSON over net/http so a
// light node in any language could consume it:
//
//	GET /v1/meta                 → chain and batch-list metadata
//	GET /v1/batch?index=N        → batch N: block span, tokens, token→HT map
//	GET /v1/batch?token=N        → the batch containing token N
//	GET /v1/rings?index=N        → rings whose tokens lie in batch N
//
// Because λ is a public system parameter and the block list is consensus
// state, every full node derives the same batch list; a light node can
// therefore cross-check answers from multiple full nodes byte for byte.
package batchsvc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/obs"
)

// Meta describes the served chain.
type Meta struct {
	Lambda  int `json:"lambda"`
	Blocks  int `json:"blocks"`
	Tokens  int `json:"tokens"`
	Rings   int `json:"rings"`
	Batches int `json:"batches"`
}

// BatchInfo is the light-node view of one batch.
type BatchInfo struct {
	Index      int            `json:"index"`
	FirstBlock chain.BlockID  `json:"first_block"`
	LastBlock  chain.BlockID  `json:"last_block"`
	Tokens     chain.TokenSet `json:"tokens"`
	// Origins maps each token (position-aligned with Tokens) to its
	// historical transaction.
	Origins []chain.TxID `json:"origins"`
}

// RingInfo is the light-node view of one ring signature.
type RingInfo struct {
	ID     chain.RSID     `json:"id"`
	Tokens chain.TokenSet `json:"tokens"`
	C      float64        `json:"c"`
	L      int            `json:"l"`
}

// Server serves one ledger's batch data. Requests pin an immutable
// (view, batch-list) snapshot with one atomic load, so they never contend
// with RefreshBatches/UpdateLedger; each request is answered from a single
// consistent chain generation even while the ledger grows mid-flight.
// Mutating the ledger directly, without going through UpdateLedger, is
// tolerated — the stale snapshot stays internally consistent — but answers
// lag until the next RefreshBatches.
type Server struct {
	// MaxInFlight caps concurrently executing requests and MaxQueue the
	// waiting room behind them (obs.LimitConcurrency); over-capacity
	// requests are shed with 503. Zero MaxInFlight disables the gate. Set
	// both before calling Handler.
	MaxInFlight int
	MaxQueue    int

	// writeMu serialises the mutators; requests never take it.
	writeMu sync.Mutex
	ledger  *chain.Ledger
	lambda  int
	snap    atomic.Pointer[svcSnapshot]
}

// svcSnapshot is one immutable generation of the served chain: a ledger
// view and the batch list derived from it.
type svcSnapshot struct {
	view    *chain.View
	batches *chain.BatchList
}

// NewServer builds a full-node server over the ledger.
func NewServer(ledger *chain.Ledger, lambda int) (*Server, error) {
	s := &Server{ledger: ledger, lambda: lambda}
	if err := s.rebuild(); err != nil {
		return nil, err
	}
	return s, nil
}

// rebuild derives a fresh snapshot from the ledger's current view and
// publishes it. Callers hold writeMu (or own the server, as NewServer does).
func (s *Server) rebuild() error {
	v := s.ledger.View()
	bl, err := chain.BuildBatchesView(v, s.lambda)
	if err != nil {
		return err
	}
	s.snap.Store(&svcSnapshot{view: v, batches: bl})
	return nil
}

// RefreshBatches recomputes the batch list after the chain grew. Safe to
// call while requests are in flight; they keep their pinned snapshot.
func (s *Server) RefreshBatches() error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return s.rebuild()
}

// UpdateLedger runs fn with exclusive write access to the ledger and then
// publishes a fresh snapshot: the safe way to append blocks while serving.
// In-flight requests keep answering from the pre-mutation snapshot.
func (s *Server) UpdateLedger(fn func(*chain.Ledger) error) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if err := fn(s.ledger); err != nil {
		return err
	}
	return s.rebuild()
}

// Handler returns the HTTP handler implementing the protocol, wrapped with
// per-route telemetry in the process-wide obs registry ("http.batchsvc.*")
// and, when MaxInFlight is set, the concurrency gate
// (in_flight/queue_depth gauges, rejected_busy counter). InstrumentHTTP sits
// outside LimitConcurrency so each request's latency histogram and trace
// include its queue wait, and sheds are per-route.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/meta", s.handleMeta)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/rings", s.handleRings)
	h := obs.LimitConcurrency(obs.Default(), "batchsvc", s.MaxInFlight, s.MaxQueue, mux)
	return obs.InstrumentHTTP(obs.Default(), "batchsvc", h,
		"/v1/meta", "/v1/batch", "/v1/rings")
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	sn := s.snap.Load()
	writeJSON(w, Meta{
		Lambda:  s.lambda,
		Blocks:  sn.view.NumBlocks(),
		Tokens:  sn.view.NumTokens(),
		Rings:   sn.view.NumRS(),
		Batches: sn.batches.Len(),
	})
}

func (sn *svcSnapshot) batchFromQuery(r *http.Request) (chain.Batch, error) {
	q := r.URL.Query()
	if idx := q.Get("index"); idx != "" {
		i, err := strconv.Atoi(idx)
		if err != nil {
			return chain.Batch{}, fmt.Errorf("bad index %q", idx)
		}
		return sn.batches.Batch(i)
	}
	if tok := q.Get("token"); tok != "" {
		t, err := strconv.Atoi(tok)
		if err != nil {
			return chain.Batch{}, fmt.Errorf("bad token %q", tok)
		}
		return sn.batches.BatchOf(chain.TokenID(t))
	}
	return chain.Batch{}, errors.New("need ?index= or ?token=")
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	sn := s.snap.Load()
	b, err := sn.batchFromQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	origins := make([]chain.TxID, len(b.Tokens))
	originOf := sn.view.OriginFunc()
	for i, t := range b.Tokens {
		origins[i] = originOf(t)
	}
	writeJSON(w, BatchInfo{
		Index:      b.Index,
		FirstBlock: b.FirstBlock,
		LastBlock:  b.LastBlock,
		Tokens:     b.Tokens,
		Origins:    origins,
	})
}

func (s *Server) handleRings(w http.ResponseWriter, r *http.Request) {
	sn := s.snap.Load()
	b, err := sn.batchFromQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var out []RingInfo
	for _, rec := range sn.view.RingsOver(b.Tokens) {
		out = append(out, RingInfo{ID: rec.ID, Tokens: rec.Tokens, C: rec.C, L: rec.L})
	}
	if out == nil {
		out = []RingInfo{}
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The 200 header and part of the body may already be on the wire, so
		// no error response can be sent; count the failure so operators see
		// truncated responses instead of silence.
		obs.Default().Counter("http.batchsvc.encode_errors").Inc()
	}
}

// Client is a light node: it fetches batch data over HTTP and exposes the
// pieces mixin selection needs, without holding any chain state.
type Client struct {
	base string
	http *http.Client
}

// NewClient points a light node at a full node's base URL.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: baseURL, http: hc}
}

func (c *Client) get(path string, into any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return fmt.Errorf("batchsvc: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("batchsvc: %s: %s", path, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		return fmt.Errorf("batchsvc: decode %s: %w", path, err)
	}
	return nil
}

// Meta fetches chain metadata.
func (c *Client) Meta() (Meta, error) {
	var m Meta
	err := c.get("/v1/meta", &m)
	return m, err
}

// BatchOf fetches the batch containing a token.
func (c *Client) BatchOf(t chain.TokenID) (BatchInfo, error) {
	var b BatchInfo
	err := c.get(fmt.Sprintf("/v1/batch?token=%d", t), &b)
	return b, err
}

// Batch fetches a batch by index.
func (c *Client) Batch(i int) (BatchInfo, error) {
	var b BatchInfo
	err := c.get(fmt.Sprintf("/v1/batch?index=%d", i), &b)
	return b, err
}

// Rings fetches the rings over a batch.
func (c *Client) Rings(batchIndex int) ([]RingInfo, error) {
	var rs []RingInfo
	err := c.get(fmt.Sprintf("/v1/rings?index=%d", batchIndex), &rs)
	return rs, err
}

// Origin builds the token→HT lookup a light node feeds to the solvers,
// valid for tokens of the fetched batch.
func (b BatchInfo) Origin() func(chain.TokenID) chain.TxID {
	m := make(map[chain.TokenID]chain.TxID, len(b.Tokens))
	for i, t := range b.Tokens {
		m[t] = b.Origins[i]
	}
	return func(t chain.TokenID) chain.TxID {
		if h, ok := m[t]; ok {
			return h
		}
		return chain.NoTx
	}
}

// Records converts fetched rings into ledger records for the solvers.
func Records(infos []RingInfo) []chain.RingRecord {
	out := make([]chain.RingRecord, len(infos))
	for i, ri := range infos {
		out[i] = chain.RingRecord{ID: ri.ID, Tokens: ri.Tokens, C: ri.C, L: ri.L, Pos: int(ri.ID)}
	}
	return out
}
