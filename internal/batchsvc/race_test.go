package batchsvc

import (
	"sync"
	"testing"

	"tokenmagic/internal/chain"
)

// TestRefreshWhileServing hammers Meta and BatchOf while the chain grows and
// the batch list is refreshed. Run with -race: before Server took a RWMutex,
// the refresh published a new batch list (and grew the ledger) in plain view
// of in-flight requests.
func TestRefreshWhileServing(t *testing.T) {
	l := buildChain(t)
	c, srv := startServer(t, l, 8)

	const readers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Meta(); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.BatchOf(0); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	// Writer: append a block full of transactions, refresh, repeat. The
	// appends go through UpdateLedger so readers never observe a ledger
	// mid-mutation; RefreshBatches alone is also exercised.
	for i := 0; i < 25; i++ {
		err := srv.UpdateLedger(func(led *chain.Ledger) error {
			id := led.BeginBlock()
			_, err := led.AddTx(id, 2)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.RefreshBatches(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	m, err := c.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if m.Blocks != 3+25 || m.Tokens != 24+50 {
		t.Fatalf("final meta = %+v", m)
	}
}
