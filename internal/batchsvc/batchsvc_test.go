package batchsvc

import (
	"net/http/httptest"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/selector"
)

func buildChain(t *testing.T) *chain.Ledger {
	t.Helper()
	l := chain.NewLedger()
	for b := 0; b < 3; b++ {
		id := l.BeginBlock()
		for tx := 0; tx < 4; tx++ {
			if _, err := l.AddTx(id, 2); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A couple of rings in batch 0 (tokens 0..7 with λ=8).
	if _, err := l.AppendRS(chain.NewTokenSet(0, 2, 4), 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendRS(chain.NewTokenSet(1, 3), 1, 2); err != nil {
		t.Fatal(err)
	}
	return l
}

func startServer(t *testing.T, l *chain.Ledger, lambda int) (*Client, *Server) {
	t.Helper()
	srv, err := NewServer(l, lambda)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, ts.Client()), srv
}

func TestMetaEndpoint(t *testing.T) {
	l := buildChain(t)
	c, _ := startServer(t, l, 8)
	m, err := c.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if m.Lambda != 8 || m.Blocks != 3 || m.Tokens != 24 || m.Rings != 2 || m.Batches != 3 {
		t.Fatalf("meta = %+v", m)
	}
}

func TestBatchEndpoints(t *testing.T) {
	l := buildChain(t)
	c, _ := startServer(t, l, 8)

	b0, err := c.Batch(0)
	if err != nil {
		t.Fatal(err)
	}
	if b0.Index != 0 || len(b0.Tokens) != 8 || len(b0.Origins) != 8 {
		t.Fatalf("batch 0 = %+v", b0)
	}
	// BatchOf must find the same batch for its tokens.
	byTok, err := c.BatchOf(5)
	if err != nil {
		t.Fatal(err)
	}
	if byTok.Index != 0 {
		t.Fatalf("BatchOf(5).Index = %d", byTok.Index)
	}
	b2, err := c.BatchOf(20)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Index != 2 {
		t.Fatalf("BatchOf(20).Index = %d", b2.Index)
	}
	// Origin lookup matches the ledger's.
	origin := b0.Origin()
	want := l.OriginFunc()
	for _, tok := range b0.Tokens {
		if origin(tok) != want(tok) {
			t.Fatalf("origin(%v) = %v, ledger says %v", tok, origin(tok), want(tok))
		}
	}
	if origin(9999) != chain.NoTx {
		t.Fatal("foreign token must map to NoTx")
	}
}

func TestRingsEndpoint(t *testing.T) {
	l := buildChain(t)
	c, _ := startServer(t, l, 8)
	rings, err := c.Rings(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rings) != 2 {
		t.Fatalf("rings = %+v", rings)
	}
	// Batch 1 has none.
	rings, err = c.Rings(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rings) != 0 {
		t.Fatalf("batch 1 rings = %+v", rings)
	}
}

func TestBadRequests(t *testing.T) {
	l := buildChain(t)
	c, _ := startServer(t, l, 8)
	if _, err := c.Batch(99); err == nil {
		t.Fatal("out-of-range batch must fail")
	}
	if _, err := c.BatchOf(9999); err == nil {
		t.Fatal("unknown token must fail")
	}
	// Raw bad queries.
	var out any
	if err := c.get("/v1/batch", &out); err == nil {
		t.Fatal("missing query must fail")
	}
	if err := c.get("/v1/batch?index=zzz", &out); err == nil {
		t.Fatal("garbage index must fail")
	}
	if err := c.get("/v1/batch?token=zzz", &out); err == nil {
		t.Fatal("garbage token must fail")
	}
}

// The headline use: a light node fetches a batch + rings and runs mixin
// selection locally, with no chain state of its own.
func TestLightNodeSelectsMixins(t *testing.T) {
	l := buildChain(t)
	c, _ := startServer(t, l, 8)

	b, err := c.BatchOf(6)
	if err != nil {
		t.Fatal(err)
	}
	ringInfos, err := c.Rings(b.Index)
	if err != nil {
		t.Fatal(err)
	}
	records := Records(ringInfos)
	supers, fresh := selector.Decompose(records, b.Tokens)
	p, err := selector.NewProblem(6, supers, fresh, b.Origin(), diversity.Requirement{C: 1, L: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := selector.Progressive(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tokens.Contains(6) {
		t.Fatalf("light-node ring %v missing target", res.Tokens)
	}
	if !res.Tokens.SubsetOf(b.Tokens) {
		t.Fatalf("light-node ring %v escapes its batch", res.Tokens)
	}
}

func TestRefreshBatches(t *testing.T) {
	l := buildChain(t)
	c, srv := startServer(t, l, 8)
	m1, err := c.Meta()
	if err != nil {
		t.Fatal(err)
	}
	// Chain grows by one block of 8 tokens → one more batch after refresh.
	id := l.BeginBlock()
	for tx := 0; tx < 4; tx++ {
		if _, err := l.AddTx(id, 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.RefreshBatches(); err != nil {
		t.Fatal(err)
	}
	m2, err := c.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if m2.Batches != m1.Batches+1 {
		t.Fatalf("batches %d → %d, want +1", m1.Batches, m2.Batches)
	}
}
