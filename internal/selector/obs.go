package selector

import (
	"errors"
	"time"

	"tokenmagic/internal/obs"
)

// solveObs instruments one solver run. Each exported solver defers the
// returned hook, which records into the process-wide obs registry under
// "selector.<ALGO>.":
//
//	solves       counter   runs of this solver
//	latency_us   histogram wall time per run
//	iterations   counter   algorithm steps (Result.Iterations), summed
//	ring_size    histogram size of each produced ring
//	no_eligible  counter   runs that ended in ErrNoEligible — the fallback
//	                       signal that drives relaxation ladders
//	errors       counter   runs that failed for any other reason
func solveObs(algo string) func(*Result, *error) {
	start := time.Now()
	return func(res *Result, err *error) {
		reg := obs.Default()
		prefix := "selector." + algo
		reg.Counter(prefix + ".solves").Inc()
		reg.Histogram(prefix+".latency_us", obs.LatencyBucketsUS).ObserveSince(start)
		if *err != nil {
			if errors.Is(*err, ErrNoEligible) {
				reg.Counter(prefix + ".no_eligible").Inc()
			} else {
				reg.Counter(prefix + ".errors").Inc()
			}
			return
		}
		reg.Counter(prefix + ".iterations").Add(int64(res.Iterations))
		reg.Histogram(prefix+".ring_size", obs.SizeBuckets).Observe(int64(res.Size()))
	}
}
