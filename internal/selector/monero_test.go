package selector

import (
	"errors"
	"math/rand"
	"testing"

	"tokenmagic/internal/chain"
)

func pool(from, to int) chain.TokenSet {
	var s chain.TokenSet
	for i := from; i <= to; i++ {
		s = append(s, chain.TokenID(i))
	}
	return s
}

func TestMoneroSampleShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := MoneroParams{Zeta: 11, Recent: pool(0, 49), Older: pool(50, 199)}
	res, err := MoneroSample(25, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 11 {
		t.Fatalf("size = %d, want ζ=11", res.Size())
	}
	if !res.Tokens.Contains(25) {
		t.Fatal("ring must contain the target")
	}
	// Half of the 10 mixins from the recent pool.
	recentCount := 0
	for _, tok := range res.Tokens {
		if tok != 25 && tok < 50 {
			recentCount++
		}
	}
	if recentCount != 5 {
		t.Fatalf("recent mixins = %d, want 5", recentCount)
	}
}

func TestMoneroSampleBackfill(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Older pool too small: spill into recent.
	p := MoneroParams{Zeta: 11, Recent: pool(0, 49), Older: pool(50, 52)}
	res, err := MoneroSample(3, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 11 {
		t.Fatalf("size = %d", res.Size())
	}
	// Empty recent pool: everything from older.
	p = MoneroParams{Zeta: 5, Older: pool(0, 30)}
	res, err = MoneroSample(3, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 5 {
		t.Fatalf("size = %d", res.Size())
	}
}

func TestMoneroSampleErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := MoneroSample(0, MoneroParams{Zeta: 1}, rng); err == nil {
		t.Fatal("ζ<2 must error")
	}
	p := MoneroParams{Zeta: 11, Recent: pool(0, 3)}
	if _, err := MoneroSample(0, p, rng); !errors.Is(err, ErrUniverseTooSmall) {
		t.Fatalf("err = %v, want ErrUniverseTooSmall", err)
	}
}

func TestMoneroSampleDistinctTokens(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := MoneroParams{Zeta: 8, Recent: pool(0, 9), Older: pool(10, 19)}
	for i := 0; i < 50; i++ {
		res, err := MoneroSample(5, p, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Tokens.IsSorted() {
			t.Fatalf("ring has duplicates or disorder: %v", res.Tokens)
		}
		if res.Size() != 8 {
			t.Fatalf("size = %d", res.Size())
		}
	}
}
