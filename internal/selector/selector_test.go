package selector

import (
	"errors"
	"math/rand"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
)

func rec(id int, toks ...chain.TokenID) chain.RingRecord {
	return chain.RingRecord{ID: chain.RSID(id), Tokens: chain.NewTokenSet(toks...), Pos: id}
}

func originOf(hts map[chain.TokenID]chain.TxID) func(chain.TokenID) chain.TxID {
	return func(t chain.TokenID) chain.TxID {
		if h, ok := hts[t]; ok {
			return h
		}
		return chain.NoTx
	}
}

// Paper Section 6.1 example: r1={t1,t2} at π, r2={t1,t2,t3} at π+1,
// r3={t4,t5} at π+2, T={t1..t6}. r2 and r3 are super; r1 is not; v(r2)=2;
// t6 is fresh.
func TestDecomposePaperExample(t *testing.T) {
	rings := []chain.RingRecord{
		rec(0, 1, 2),
		rec(1, 1, 2, 3),
		rec(2, 4, 5),
	}
	universe := chain.NewTokenSet(1, 2, 3, 4, 5, 6)
	supers, fresh := Decompose(rings, universe)
	if len(supers) != 2 {
		t.Fatalf("supers = %+v, want 2", supers)
	}
	if supers[0].Ring.ID != 1 || supers[0].SubsetCount != 2 {
		t.Fatalf("super r2 = %+v, want v=2", supers[0])
	}
	if supers[1].Ring.ID != 2 || supers[1].SubsetCount != 1 {
		t.Fatalf("super r3 = %+v, want v=1", supers[1])
	}
	if !fresh.Equal(chain.NewTokenSet(6)) {
		t.Fatalf("fresh = %v, want {6}", fresh)
	}
}

func TestDecomposeEmptyRings(t *testing.T) {
	supers, fresh := Decompose(nil, chain.NewTokenSet(1, 2))
	if len(supers) != 0 || !fresh.Equal(chain.NewTokenSet(1, 2)) {
		t.Fatalf("supers=%v fresh=%v", supers, fresh)
	}
}

// Paper Example 3: four super RSs; consume t11 with recursive (1,4).
// s1={t1..t6}, s2={t7..t10}, s3={t11,t12}, s4={t13..t15}.
// HTs: t1,t2,t7,t8→h1; t3,t4,t9→h2; t5,t13,t14→h3; t6,t10→h6;
// t11,t15→h4; t12→h5.
func example3Problem(t *testing.T, req diversity.Requirement) *Problem {
	t.Helper()
	rings := []chain.RingRecord{
		rec(0, 1, 2, 3, 4, 5, 6),
		rec(1, 7, 8, 9, 10),
		rec(2, 11, 12),
		rec(3, 13, 14, 15),
	}
	universe := chain.NewTokenSet(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15)
	origin := originOf(map[chain.TokenID]chain.TxID{
		1: 1, 2: 1, 7: 1, 8: 1,
		3: 2, 4: 2, 9: 2,
		5: 3, 13: 3, 14: 3,
		6: 6, 10: 6,
		11: 4, 15: 4,
		12: 5,
	})
	supers, fresh := Decompose(rings, universe)
	p, err := NewProblem(11, supers, fresh, origin, req)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The paper traces Progressive on Example 3: x_τ = s3; first while-loop adds
// s2 (covering ≥4 HTs); second loop adds s4 (β4 = 1/3 beats β1 = −1/6).
func TestProgressivePaperExample3(t *testing.T) {
	p := example3Problem(t, diversity.Requirement{C: 1, L: 4})
	res, err := Progressive(p)
	if err != nil {
		t.Fatal(err)
	}
	want := chain.NewTokenSet(7, 8, 9, 10, 11, 12, 13, 14, 15) // s2 ∪ s3 ∪ s4
	if !res.Tokens.Equal(want) {
		t.Fatalf("Progressive tokens = %v, want s2∪s3∪s4 = %v", res.Tokens, want)
	}
	if res.Modules != 3 {
		t.Fatalf("Modules = %d, want 3", res.Modules)
	}
	if !diversity.SatisfiesTokens(res.Tokens, p.Origin, p.Req) {
		t.Fatal("result must satisfy the requirement")
	}
}

// The paper traces Game on Example 3 (index-order sweeps) to s1∪s3, size 8.
// Our sweeps visit players in ascending module size — a different but
// equally valid best-response schedule — and land on the equilibrium
// s2∪s3∪s4, size 9. Either way the result must be a Nash equilibrium:
// feasible, containing the mandatory module, with no single strategy flip
// reducing any player's cost; and no larger than Progressive's greedy.
func TestGamePaperExample3(t *testing.T) {
	p := example3Problem(t, diversity.Requirement{C: 1, L: 4})
	res, err := Game(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tokens.Contains(11) || !res.Tokens.Contains(12) {
		t.Fatalf("Game tokens %v must include the mandatory s3", res.Tokens)
	}
	if !diversity.SatisfiesTokens(res.Tokens, p.Origin, p.Req) {
		t.Fatal("result must satisfy the requirement")
	}
	pr, err := Progressive(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() > pr.Size() {
		t.Fatalf("Game %d should not exceed Progressive %d here", res.Size(), pr.Size())
	}
	// Nash check: no selected module can leave while keeping feasibility
	// (leaving always reduces |r|, so feasibility is the only barrier), and
	// no unselected module can join and strictly reduce cost (joining grows
	// |r|, so it never can). Verify the first half explicitly.
	modules := append([]Module{p.Mandatory}, p.Candidates...)
	for _, m := range modules[1:] {
		if !m.Tokens.SubsetOf(res.Tokens) {
			continue // not selected
		}
		without := res.Tokens.Minus(m.Tokens)
		if diversity.SatisfiesTokens(without, p.Origin, p.Req) {
			t.Fatalf("not an equilibrium: dropping %v keeps feasibility", m.Tokens)
		}
	}
}

func TestSmallestAndRandomEligible(t *testing.T) {
	p := example3Problem(t, diversity.Requirement{C: 1, L: 4})
	res, err := Smallest(p)
	if err != nil {
		t.Fatal(err)
	}
	if !diversity.SatisfiesTokens(res.Tokens, p.Origin, p.Req) {
		t.Fatal("Smallest result must satisfy the requirement")
	}
	rng := rand.New(rand.NewSource(7))
	res, err = Random(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !diversity.SatisfiesTokens(res.Tokens, p.Origin, p.Req) {
		t.Fatal("Random result must satisfy the requirement")
	}
}

func TestNewProblemErrors(t *testing.T) {
	origin := originOf(map[chain.TokenID]chain.TxID{1: 1})
	if _, err := NewProblem(1, nil, nil, origin, diversity.Requirement{C: 1, L: 1}); err == nil {
		t.Fatal("target outside universe must error")
	}
	if _, err := NewProblem(1, nil, chain.NewTokenSet(1), origin, diversity.Requirement{C: 0, L: 1}); err == nil {
		t.Fatal("invalid requirement must error")
	}
	// Target both fresh and in a super ring: configuration violation.
	supers := []Super{{Ring: rec(0, 1, 2), SubsetCount: 1}}
	if _, err := NewProblem(1, supers, chain.NewTokenSet(1), origin, diversity.Requirement{C: 1, L: 1}); err == nil {
		t.Fatal("target in both module kinds must error")
	}
}

func TestMandatoryFreshTarget(t *testing.T) {
	origin := originOf(map[chain.TokenID]chain.TxID{1: 1, 2: 2, 3: 3})
	p, err := NewProblem(1, nil, chain.NewTokenSet(1, 2, 3), origin, diversity.Requirement{C: 2, L: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Mandatory.Fresh || !p.Mandatory.Tokens.Equal(chain.NewTokenSet(1)) {
		t.Fatalf("Mandatory = %+v", p.Mandatory)
	}
	if len(p.Candidates) != 2 {
		t.Fatalf("Candidates = %+v", p.Candidates)
	}
	res, err := Progressive(p)
	if err != nil {
		t.Fatal(err)
	}
	// Needs 2 distinct HTs with q1=1 < 2·q_tail: {1, x} suffices.
	if res.Size() != 2 || !res.Tokens.Contains(1) {
		t.Fatalf("Progressive = %v, want target plus one mixin", res.Tokens)
	}
}

func TestNoEligibleWhenUniverseTooHomogeneous(t *testing.T) {
	// All tokens from one HT: ℓ=2 unreachable.
	origin := originOf(map[chain.TokenID]chain.TxID{1: 1, 2: 1, 3: 1})
	p, err := NewProblem(1, nil, chain.NewTokenSet(1, 2, 3), origin, diversity.Requirement{C: 1, L: 2})
	if err != nil {
		t.Fatal(err)
	}
	for name, run := range map[string]func() (Result, error){
		"Progressive": func() (Result, error) { return Progressive(p) },
		"Game":        func() (Result, error) { return Game(p) },
		"Smallest":    func() (Result, error) { return Smallest(p) },
		"Random":      func() (Result, error) { return Random(p, rand.New(rand.NewSource(1))) },
	} {
		if _, err := run(); !errors.Is(err, ErrNoEligible) {
			t.Errorf("%s err = %v, want ErrNoEligible", name, err)
		}
	}
}

// All four solvers must return requirement-satisfying rings containing the
// target on randomised instances; Game's equilibrium should never be larger
// than 2x Progressive's greedy (loose sanity bound, PoS ≤ 1 in theory).
func TestSolversRandomisedAgreement(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nHT := 4 + rng.Intn(6)
		var universe chain.TokenSet
		hts := make(map[chain.TokenID]chain.TxID)
		next := chain.TokenID(0)
		var rings []chain.RingRecord
		// A few disjoint super rings.
		for s := 0; s < 3+rng.Intn(4); s++ {
			var toks []chain.TokenID
			for k := 0; k < 2+rng.Intn(5); k++ {
				hts[next] = chain.TxID(rng.Intn(nHT))
				toks = append(toks, next)
				next++
			}
			rings = append(rings, rec(s, toks...))
			universe = universe.Union(chain.NewTokenSet(toks...))
		}
		// Some fresh tokens.
		for f := 0; f < rng.Intn(5); f++ {
			hts[next] = chain.TxID(rng.Intn(nHT))
			universe = universe.Add(next)
			next++
		}
		origin := originOf(hts)
		target := universe[rng.Intn(len(universe))]
		req := diversity.Requirement{C: 0.5 + rng.Float64(), L: 2 + rng.Intn(2)}

		supers, fresh := Decompose(rings, universe)
		p, err := NewProblem(target, supers, fresh, origin, req)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		check := func(name string, res Result, err error) {
			if errors.Is(err, ErrNoEligible) {
				return
			}
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			if !res.Tokens.Contains(target) {
				t.Fatalf("seed %d %s: target missing from %v", seed, name, res.Tokens)
			}
			if !diversity.SatisfiesTokens(res.Tokens, origin, req) {
				t.Fatalf("seed %d %s: requirement violated by %v", seed, name, res.Tokens)
			}
		}
		pr, prErr := Progressive(p)
		check("Progressive", pr, prErr)
		ga, gaErr := Game(p)
		check("Game", ga, gaErr)
		sm, smErr := Smallest(p)
		check("Smallest", sm, smErr)
		ra, raErr := Random(p, rng)
		check("Random", ra, raErr)

		// Recursive diversity is not monotone in additions (a module can
		// inflate q₁), so greedy heuristics may fail on feasible instances;
		// solvers may legitimately disagree on feasibility. But success
		// plus validity was asserted above for each, and when both
		// approximation algorithms succeed the Game equilibrium should not
		// be wildly worse than Progressive (sanity, not a theorem).
		if prErr == nil && gaErr == nil && ga.Size() > 3*pr.Size() {
			t.Fatalf("seed %d: Game size %d vs Progressive %d", seed, ga.Size(), pr.Size())
		}
	}
}

func TestModuleSize(t *testing.T) {
	m := Module{Tokens: chain.NewTokenSet(1, 2, 3)}
	if m.Size() != 3 {
		t.Fatalf("Size = %d", m.Size())
	}
}
