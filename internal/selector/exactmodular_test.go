package selector

import (
	"errors"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
)

func TestExactModularOnExample3(t *testing.T) {
	p := example3Problem(t, diversity.Requirement{C: 1, L: 4})
	opt, err := ExactModular(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Example 3 optimum is s1∪s3 (size 8).
	want := chain.NewTokenSet(1, 2, 3, 4, 5, 6, 11, 12)
	if !opt.Tokens.Equal(want) {
		t.Fatalf("ExactModular = %v (size %d), want s1∪s3 = %v", opt.Tokens, opt.Size(), want)
	}
	// The approximation algorithms must not beat the optimum.
	for name, run := range map[string]func(*Problem) (Result, error){
		"Progressive": Progressive, "Game": Game, "Smallest": Smallest,
	} {
		res, err := run(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Size() < opt.Size() {
			t.Fatalf("%s beat the exact optimum: %d < %d", name, res.Size(), opt.Size())
		}
		ratio, err := Gap(p, res, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ratio < 1 {
			t.Fatalf("%s gap %v < 1", name, ratio)
		}
	}
}

func TestExactModularInfeasible(t *testing.T) {
	origin := originOf(map[chain.TokenID]chain.TxID{1: 1, 2: 1})
	p, err := NewProblem(1, nil, chain.NewTokenSet(1, 2), origin, diversity.Requirement{C: 1, L: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExactModular(p, 0); !errors.Is(err, ErrNoEligible) {
		t.Fatalf("err = %v", err)
	}
}

func TestExactModularCap(t *testing.T) {
	origin := originOf(map[chain.TokenID]chain.TxID{})
	var fresh chain.TokenSet
	for i := chain.TokenID(0); i < 25; i++ {
		fresh = append(fresh, i)
	}
	p, err := NewProblem(0, nil, fresh, origin, diversity.Requirement{C: 5, L: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExactModular(p, 10); !errors.Is(err, ErrModularTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestExactModularValidatesReq(t *testing.T) {
	p := &Problem{Req: diversity.Requirement{C: -1, L: 0}}
	if _, err := ExactModular(p, 0); err == nil {
		t.Fatal("invalid requirement must error")
	}
}
