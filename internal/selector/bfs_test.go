package selector

import (
	"errors"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/rsgraph"
)

// Paper Example 1: T={t1..t4}; r1=r2={t1,t2}; t1,t3 from h1; t2 from h2;
// t4 from h3. Consuming t3, BFS must find the paper's "good" answer
// r3={t3,t4}: minimum size, diverse, non-eliminating.
func TestBFSPaperExample1(t *testing.T) {
	origin := originOf(map[chain.TokenID]chain.TxID{1: 1, 2: 2, 3: 1, 4: 3})
	p := &ExactProblem{
		Target:   3,
		Universe: chain.NewTokenSet(1, 2, 3, 4),
		Rings: []chain.RingRecord{
			{ID: 0, Tokens: chain.NewTokenSet(1, 2), C: 10, L: 1, Pos: 0},
			{ID: 1, Tokens: chain.NewTokenSet(1, 2), C: 10, L: 1, Pos: 1},
		},
		Origin: origin,
		Req:    diversity.Requirement{C: 10, L: 2},
	}
	res, err := BFS(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tokens.Equal(chain.NewTokenSet(3, 4)) {
		t.Fatalf("BFS = %v, want {t3,t4}", res.Tokens)
	}
}

// The homogeneous option {t1,t3} must be rejected (homogeneity attack): with
// a universe lacking t4, and {t2,t3} rejected by chain reaction, the only
// resort is the full ring {t1,t2,t3}... which still fails because consumed
// t1/t2 elimination reveals h1. With requirement ℓ=2 the solver must find
// that nothing works.
func TestBFSDetectsNoEligible(t *testing.T) {
	origin := originOf(map[chain.TokenID]chain.TxID{1: 1, 2: 2, 3: 1})
	p := &ExactProblem{
		Target:   3,
		Universe: chain.NewTokenSet(1, 2, 3),
		Rings: []chain.RingRecord{
			{ID: 0, Tokens: chain.NewTokenSet(1, 2), C: 10, L: 1, Pos: 0},
			{ID: 1, Tokens: chain.NewTokenSet(1, 2), C: 10, L: 1, Pos: 1},
		},
		Origin: origin,
		Req:    diversity.Requirement{C: 10, L: 2},
	}
	// {t2,t3}: t1 and t2 are provably consumed by the twin rings, so t2 is
	// eliminated → non-eliminated constraint fails. {t1,t3}: same, plus
	// homogeneity. {t1,t2,t3}: every combination forces t3 consumed in the
	// new ring → t1/t2 eliminated from it.
	if _, err := BFS(p); !errors.Is(err, ErrNoEligible) {
		t.Fatalf("err = %v, want ErrNoEligible", err)
	}
}

func TestBFSMinimality(t *testing.T) {
	// No existing rings; 6 tokens over 3 HTs; requirement (2,2): q1 < 2·tail.
	// Ring {target, anything from another HT} of size 2 suffices.
	origin := originOf(map[chain.TokenID]chain.TxID{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 5: 2})
	p := &ExactProblem{
		Target:   0,
		Universe: chain.NewTokenSet(0, 1, 2, 3, 4, 5),
		Origin:   origin,
		Req:      diversity.Requirement{C: 2, L: 2},
	}
	res, err := BFS(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 2 {
		t.Fatalf("BFS size = %d, want 2 (minimal)", res.Size())
	}
	if !res.Tokens.Contains(0) {
		t.Fatalf("result %v must contain target", res.Tokens)
	}
	if !diversity.SatisfiesTokens(res.Tokens, origin, p.Req) {
		t.Fatal("result must satisfy requirement")
	}
}

func TestBFSValidatesInput(t *testing.T) {
	origin := originOf(nil)
	p := &ExactProblem{Target: 9, Universe: chain.NewTokenSet(1), Origin: origin,
		Req: diversity.Requirement{C: 1, L: 1}}
	if _, err := BFS(p); err == nil {
		t.Fatal("target outside universe must error")
	}
	p = &ExactProblem{Target: 1, Universe: chain.NewTokenSet(1), Origin: origin,
		Req: diversity.Requirement{C: 0, L: 1}}
	if _, err := BFS(p); err == nil {
		t.Fatal("invalid requirement must error")
	}
}

// BFS results always beat-or-match the practical solvers in size when both
// succeed, since BFS is exact over a strictly larger solution space.
func TestBFSAtMostProgressive(t *testing.T) {
	origin := originOf(map[chain.TokenID]chain.TxID{
		0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 5: 2, 6: 3, 7: 3,
	})
	universe := chain.NewTokenSet(0, 1, 2, 3, 4, 5, 6, 7)
	rings := []chain.RingRecord{
		{ID: 0, Tokens: chain.NewTokenSet(0, 2), C: 1, L: 1, Pos: 0},
	}
	req := diversity.Requirement{C: 2, L: 2}

	exact, err := BFS(&ExactProblem{Target: 4, Universe: universe, Rings: rings,
		Origin: origin, Req: req, Enum: rsgraph.EnumOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	supers, fresh := Decompose(rings, universe)
	p, err := NewProblem(4, supers, fresh, origin, req)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Progressive(p)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Size() > approx.Size() {
		t.Fatalf("exact %d > approx %d", exact.Size(), approx.Size())
	}
}

func TestForEachIndexSubset(t *testing.T) {
	var count int
	err := forEachIndexSubset(4, 2, func(idx []int) (bool, error) {
		if len(idx) != 2 || idx[0] >= idx[1] || idx[1] > 3 {
			t.Fatalf("bad subset %v", idx)
		}
		count++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 6 {
		t.Fatalf("C(4,2) = 6, got %d", count)
	}
	// k > n: no calls, no error.
	if err := forEachIndexSubset(4, 9, func([]int) (bool, error) {
		t.Fatal("must not be called")
		return false, nil
	}); err != nil {
		t.Fatal(err)
	}
	// Early stop.
	count = 0
	_ = forEachIndexSubset(4, 1, func([]int) (bool, error) {
		count++
		return false, nil
	})
	if count != 1 {
		t.Fatalf("early stop, got %d calls", count)
	}
}
