package selector

import (
	"context"
	"math/rand"

	"tokenmagic/internal/obs/trace"
)

// Smallest is the paper's TM_S baseline: repeatedly add the module with the
// smallest token count until the union's HT multiset satisfies the
// requirement.
func Smallest(p *Problem) (Result, error) {
	return SmallestCtx(context.Background(), p)
}

// SmallestCtx is Smallest with cooperative cancellation, polled once per
// greedy step.
func SmallestCtx(ctx context.Context, p *Problem) (res Result, err error) {
	defer solveObs("TM_S")(&res, &err)
	sp := trace.StartChild(ctx, "solve")
	sp.Annotate("solver", "TM_S")
	defer func() {
		sp.AnnotateInt("ring_size", int64(res.Size()))
		sp.End()
	}()
	st := newState(p)
	for !st.hist.Satisfies(p.Req) {
		if cancelled(ctx) {
			return Result{}, ctxErr(ctx)
		}
		st.iters++
		best := -1
		for i, m := range p.Candidates {
			if st.selected[i] {
				continue
			}
			if best == -1 || m.Size() < p.Candidates[best].Size() {
				best = i
			}
		}
		if best == -1 {
			return Result{}, ErrNoEligible
		}
		st.add(best)
	}
	return st.result(), nil
}

// Random is the paper's TM_R baseline: repeatedly add a uniformly random
// unselected module until the union's HT multiset satisfies the requirement.
// rng must be non-nil so experiments stay reproducible.
func Random(p *Problem, rng *rand.Rand) (Result, error) {
	return RandomCtx(context.Background(), p, rng)
}

// RandomCtx is Random with cooperative cancellation, polled once per greedy
// step. The rng is consumed in a deterministic order regardless of
// cancellation timing: a cancelled solve simply stops drawing.
func RandomCtx(ctx context.Context, p *Problem, rng *rand.Rand) (res Result, err error) {
	defer solveObs("TM_R")(&res, &err)
	sp := trace.StartChild(ctx, "solve")
	sp.Annotate("solver", "TM_R")
	defer func() {
		sp.AnnotateInt("ring_size", int64(res.Size()))
		sp.End()
	}()
	st := newState(p)
	var unselected []int
	for i := range p.Candidates {
		unselected = append(unselected, i)
	}
	for !st.hist.Satisfies(p.Req) {
		if cancelled(ctx) {
			return Result{}, ctxErr(ctx)
		}
		st.iters++
		if len(unselected) == 0 {
			return Result{}, ErrNoEligible
		}
		k := rng.Intn(len(unselected))
		st.add(unselected[k])
		unselected[k] = unselected[len(unselected)-1]
		unselected = unselected[:len(unselected)-1]
	}
	return st.result(), nil
}
