package selector

import (
	"context"
	"math"
	"sort"

	"tokenmagic/internal/obs/trace"
)

// sortBySizeAsc orders player indices by module size, smallest first, with
// index as a stable tiebreaker.
func sortBySizeAsc(order []int, mods []Module) {
	sort.SliceStable(order, func(a, b int) bool {
		return mods[order[a]].Size() < mods[order[b]].Size()
	})
}

// Game solves the modular DA-MS instance with the potential-game
// best-response dynamics of Algorithm 5. Every candidate module is a player
// with strategies φ (selected) and φ̄ (not selected); the cost of a profile
// is |r̃|/|A| when the union's HT multiset satisfies the requirement and ∞
// otherwise. The game is an exact potential game (Φ equals the common cost),
// so best-response sweeps converge to a Nash equilibrium; Theorem 6.6 bounds
// the iterations and Theorem 6.7 the equilibrium quality (PoS ≤ 1).
//
// The returned Result's Iterations counts best-response sweeps after the
// shared HT-cover phase.
func Game(p *Problem) (Result, error) {
	return GameCtx(context.Background(), p)
}

// GameCtx is Game with cooperative cancellation, polled once per
// best-response sweep (each sweep visits every player).
func GameCtx(ctx context.Context, p *Problem) (res Result, err error) {
	defer solveObs("TM_G")(&res, &err)
	sp := trace.StartChild(ctx, "solve")
	sp.Annotate("solver", "TM_G")
	defer func() {
		sp.AnnotateInt("ring_size", int64(res.Size()))
		sp.End()
	}()
	st := newState(p)
	if !st.hist.Satisfies(p.Req) {
		if err := st.coverHTPhase(ctx); err != nil {
			return Result{}, err
		}
	}

	nPlayers := len(p.Candidates)
	if nPlayers == 0 {
		if st.hist.Satisfies(p.Req) {
			return st.result(), nil
		}
		return Result{}, ErrNoEligible
	}

	// cost of the current profile for every player (common cost game).
	cost := func() float64 {
		if st.hist.Satisfies(p.Req) {
			return float64(st.nTokens) / float64(nPlayers)
		}
		return math.Inf(1)
	}

	// Best-response sweeps. The potential decreases by ≥ 1/|A| per strategy
	// change and is bounded by n/|A|, so O(n) sweeps suffice; the cap below
	// only guards against floating-point pathologies.
	//
	// Sweep order is a free choice in best-response dynamics; visiting
	// players in ascending module size means small modules are recruited
	// first when the profile is infeasible (tie → φ), so feasibility is
	// reached with cheap additions and the large modules never need to
	// join. This consistently reaches smaller equilibria than index order;
	// the equilibrium set and the convergence guarantee are unaffected.
	order := make([]int, nPlayers)
	for i := range order {
		order[i] = i
	}
	sortBySizeAsc(order, p.Candidates)
	maxSweeps := 4*nPlayers + 16
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if cancelled(ctx) {
			return Result{}, ctxErr(ctx)
		}
		st.iters++
		changed := false
		for _, i := range order {
			wasSelected := st.selected[i]
			// Cost of strategy φ (selected)…
			if !wasSelected {
				st.add(i)
			}
			costSel := cost()
			// …and of φ̄ (not selected).
			st.remove(i)
			costUnsel := cost()
			// Algorithm 5 line 7: prefer φ on ties. This is what lets an
			// infeasible profile (both costs ∞) recruit players until the
			// union becomes feasible.
			wantSelected := costSel <= costUnsel
			if wantSelected {
				st.add(i)
			}
			if wantSelected != wasSelected {
				changed = true
			}
		}
		if !changed {
			// Nash equilibrium.
			if !st.hist.Satisfies(p.Req) {
				return Result{}, ErrNoEligible
			}
			return st.result(), nil
		}
	}
	if st.hist.Satisfies(p.Req) {
		return st.result(), nil
	}
	return Result{}, ErrNoEligible
}
