// Package selector implements the paper's DA-MS solvers:
//
//   - BFS: the exact breadth-first search (Algorithm 2 + GetDTRSs), feasible
//     only on small universes; it realises the full Definition-5 constraint
//     set (diversity, non-eliminated, immutability) via exact enumeration.
//   - Progressive: the two-phase greedy approximation (Algorithm 4) with
//     ratio ε + q_M·z_M·10^γ (Theorem 6.5).
//   - Game: the potential-game best-response algorithm (Algorithm 5),
//     convergent in O(n³) (Theorem 6.6) with PoS ≤ 1 (Theorem 6.7).
//   - Smallest, Random: the paper's two baselines (TM_S, TM_R).
//
// All practical solvers work under the paper's two practical configurations:
// a new ring is a union of "modules" (super rings and fresh tokens,
// Definitions 7–8), and its HT multiset must satisfy the headroom
// requirement (c, ℓ+1) so that every DTRS retains (c, ℓ) (Theorem 6.4) and
// existing rings keep their declared diversity (immutability for free).
//
// The greedy hot loops are allocation-free: each module's HT footprint
// (distinct HTs plus multiplicities) is computed once per Problem, slack
// probes are delta evaluations against the incremental diversity index
// (diversity.Histogram), and the running selection tracks only a token
// count — the result TokenSet is materialised once, at the end.
package selector

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
)

// cancelled is the cooperative cancellation probe the solver loops poll at
// iteration boundaries. It never blocks.
func cancelled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// ctxErr wraps a context failure so callers can both errors.Is it against
// context.Canceled/DeadlineExceeded and tell it apart from ErrNoEligible.
func ctxErr(ctx context.Context) error {
	return fmt.Errorf("selector: solve cancelled: %w", ctx.Err())
}

// Module is a selectable unit under the first practical configuration:
// either one super ring signature or one fresh token.
type Module struct {
	Tokens chain.TokenSet
	Fresh  bool       // true when the module is a single fresh token
	Super  chain.RSID // the super ring's id when !Fresh
}

// Size returns |x_i|, the token count of the module.
func (m Module) Size() int { return len(m.Tokens) }

// footprint is a module's HT profile: the distinct HTs its tokens map to and
// how many tokens map to each. Precomputed once per Problem so the greedy
// loops never call Origin or build scratch maps.
type footprint struct {
	txs []chain.TxID
	ns  []int
}

func footprintOf(m Module, origin func(chain.TokenID) chain.TxID) footprint {
	var fp footprint
	for _, t := range m.Tokens {
		h := origin(t)
		found := false
		for j, x := range fp.txs {
			if x == h {
				fp.ns[j]++
				found = true
				break
			}
		}
		if !found {
			fp.txs = append(fp.txs, h)
			fp.ns = append(fp.ns, 1)
		}
	}
	return fp
}

// Super is a super ring signature (Definition 7) with its subset count v.
type Super struct {
	Ring        chain.RingRecord
	SubsetCount int // v: rings in R_π^T that are subsets of this ring (incl. itself)
}

// Decompose splits the related RS set over a universe into super rings and
// fresh tokens (Definitions 7 and 8). rings must be in proposal order.
// A ring is super when no later ring is a superset of it; a token is fresh
// when no ring contains it.
//
// Rings are scanned in one sorted-by-size order: a superset of r must be at
// least as large as r and a subset at most as large, so each check walks the
// size-sorted candidates and exits as soon as sizes cross |r| — O(r log r)
// for the sort plus only the size-admissible subset checks, instead of the
// former all-pairs O(r²).
//
//tmlint:readonly rings universe
func Decompose(rings []chain.RingRecord, universe chain.TokenSet) (supers []Super, fresh chain.TokenSet) {
	n := len(rings)
	// Indices sorted by ring size, descending; sizeAsc is the same walk from
	// the other end.
	bySizeDesc := make([]int, n)
	for i := range bySizeDesc {
		bySizeDesc[i] = i
	}
	sort.SliceStable(bySizeDesc, func(a, b int) bool {
		return len(rings[bySizeDesc[a]].Tokens) > len(rings[bySizeDesc[b]].Tokens)
	})

	var coveredIDs []chain.TokenID
	for _, r := range rings {
		coveredIDs = append(coveredIDs, r.Tokens...)
	}

	for i, ri := range rings {
		size := len(ri.Tokens)
		isSuper := true
		for _, j := range bySizeDesc {
			if len(rings[j].Tokens) < size {
				break // early exit: no smaller ring can be a superset
			}
			if j > i && ri.Tokens.SubsetOf(rings[j].Tokens) {
				isSuper = false
				break
			}
		}
		if !isSuper {
			continue
		}
		v := 0
		for k := n - 1; k >= 0; k-- {
			j := bySizeDesc[k]
			if len(rings[j].Tokens) > size {
				break // early exit: no larger ring can be a subset
			}
			if rings[j].Tokens.SubsetOf(ri.Tokens) {
				v++
			}
		}
		supers = append(supers, Super{Ring: ri, SubsetCount: v})
	}
	fresh = universe.Minus(chain.NewTokenSet(coveredIDs...))
	return supers, fresh
}

// Problem is one modular DA-MS instance: choose a minimum-cardinality union
// of modules containing the mandatory module such that the union's HT
// multiset satisfies Req.
type Problem struct {
	// Target is the token being consumed.
	Target chain.TokenID
	// Mandatory is the module containing Target (its super ring, or the
	// token itself when fresh). It is always part of the result.
	Mandatory Module
	// Candidates are the other selectable modules.
	Candidates []Module
	// Origin maps tokens to historical transactions.
	Origin func(chain.TokenID) chain.TxID
	// Req is the effective diversity requirement the result's HT multiset
	// must satisfy. Callers wanting the second practical configuration pass
	// the user requirement tightened via Requirement.WithHeadroom.
	Req diversity.Requirement

	// Precomputed HT footprints (mandatory module, then one per candidate),
	// filled by NewProblem or lazily on first solve.
	mandFP   footprint
	candFP   []footprint
	prepared bool
}

// prepare computes the per-module HT footprints once. NewProblem calls it
// eagerly; Problems assembled by hand get it on first solve.
func (p *Problem) prepare() {
	if p.prepared {
		return
	}
	p.mandFP = footprintOf(p.Mandatory, p.Origin)
	p.candFP = make([]footprint, len(p.Candidates))
	for i := range p.Candidates {
		p.candFP[i] = footprintOf(p.Candidates[i], p.Origin)
	}
	p.prepared = true
}

// NewProblem assembles a Problem from a decomposition. It locates the module
// containing target among supers/fresh and returns an error if the target is
// not in the universe described by the decomposition.
func NewProblem(target chain.TokenID, supers []Super, fresh chain.TokenSet, origin func(chain.TokenID) chain.TxID, req diversity.Requirement) (*Problem, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	p := &Problem{Target: target, Origin: origin, Req: req}
	found := false
	for _, s := range supers {
		m := Module{Tokens: s.Ring.Tokens, Super: s.Ring.ID}
		if s.Ring.Tokens.Contains(target) {
			if found {
				return nil, fmt.Errorf("selector: target %v in multiple super rings (configuration violated)", target)
			}
			p.Mandatory = m
			found = true
			continue
		}
		p.Candidates = append(p.Candidates, m)
	}
	for _, t := range fresh {
		m := Module{Tokens: chain.NewTokenSet(t), Fresh: true}
		if t == target {
			if found {
				return nil, fmt.Errorf("selector: target %v is both fresh and in a super ring", target)
			}
			p.Mandatory = m
			found = true
			continue
		}
		p.Candidates = append(p.Candidates, m)
	}
	if !found {
		return nil, fmt.Errorf("selector: target %v not in universe", target)
	}
	p.prepare()
	return p, nil
}

// Result is a solved DA-MS instance.
type Result struct {
	// Tokens is the full new ring signature: the consuming token plus
	// mixins, as the union of the chosen modules.
	Tokens chain.TokenSet
	// Modules is how many modules were chosen (including the mandatory one).
	Modules int
	// Iterations counts algorithm-specific work: greedy steps for
	// Progressive/Smallest/Random, best-response passes for Game, candidate
	// rings examined for BFS.
	Iterations int
}

// Size returns the cardinality of the new ring.
func (r Result) Size() int { return len(r.Tokens) }

// ErrNoEligible is returned when no ring satisfying the constraints exists
// over the given modules; per Section 4 the user should relax (c, ℓ) —
// increase c or decrease ℓ — and retry.
var ErrNoEligible = errors.New("selector: no eligible ring signature exists; relax the diversity requirement")

// state tracks the running selection shared by the greedy algorithms. Module
// unions are tracked as an incremental HT histogram plus a token count;
// modules never overlap under the first practical configuration, so the
// union's cardinality is the sum of the selected modules' sizes and the full
// TokenSet only needs materialising once, in result().
type state struct {
	p        *Problem
	hist     *diversity.Histogram
	selected []bool // over p.Candidates
	modules  int
	nTokens  int // |union of selected modules|
	iters    int
}

func newState(p *Problem) *state {
	p.prepare()
	st := &state{
		p:        p,
		hist:     diversity.NewHistogram(),
		selected: make([]bool, len(p.Candidates)),
		modules:  1,
		nTokens:  len(p.Mandatory.Tokens),
	}
	fp := &p.mandFP
	for j, tx := range fp.txs {
		st.hist.AddN(tx, fp.ns[j])
	}
	return st
}

// add selects candidate i.
//
//tmlint:hotpath
func (st *state) add(i int) {
	st.selected[i] = true
	st.modules++
	st.nTokens += st.p.Candidates[i].Size()
	fp := &st.p.candFP[i]
	for j, tx := range fp.txs {
		st.hist.AddN(tx, fp.ns[j])
	}
}

// remove deselects candidate i. Only valid when modules do not overlap
// (guaranteed under the first practical configuration).
//
//tmlint:hotpath
func (st *state) remove(i int) {
	st.selected[i] = false
	st.modules--
	st.nTokens -= st.p.Candidates[i].Size()
	fp := &st.p.candFP[i]
	for j, tx := range fp.txs {
		st.hist.RemoveN(tx, fp.ns[j])
	}
}

// result materialises the selection as a TokenSet.
func (st *state) result() Result {
	ids := make([]chain.TokenID, 0, st.nTokens)
	ids = append(ids, st.p.Mandatory.Tokens...)
	for i, sel := range st.selected {
		if sel {
			ids = append(ids, st.p.Candidates[i].Tokens...)
		}
	}
	return Result{Tokens: chain.NewTokenSet(ids...), Modules: st.modules, Iterations: st.iters}
}

// newHTs counts |H_i \ H|: distinct HTs candidate i would newly contribute.
//
//tmlint:hotpath
func (st *state) newHTs(i int) int {
	n := 0
	for _, tx := range st.p.candFP[i].txs {
		if st.hist.Count(tx) == 0 {
			n++
		}
	}
	return n
}

// slackWith returns δ_i: the requirement slack if candidate i were added.
// It is a read-only delta probe against the incremental index: the module's
// precomputed footprint is overlaid on the count-of-counts walk without
// mutating the histogram — no cloning, no allocation, no undo step.
//
//tmlint:hotpath
func (st *state) slackWith(i int) float64 {
	fp := &st.p.candFP[i]
	return st.hist.SlackIfAddedN(st.p.Req, fp.txs, fp.ns)
}

// coverHTPhase runs the shared first phase of Progressive and Game
// (Algorithm 4 lines 2–4 / Algorithm 5 lines 2–4): greedily add the module
// with minimal α_i = |x_i| / min(ℓ−|H|, |H_i \ H|) until the selection spans
// at least ℓ distinct HTs. Cancellation is checked once per greedy step.
func (st *state) coverHTPhase(ctx context.Context) error {
	for st.hist.Classes() < st.p.Req.L {
		if cancelled(ctx) {
			return ctxErr(ctx)
		}
		st.iters++
		need := st.p.Req.L - st.hist.Classes()
		best := -1
		bestAlpha := math.Inf(1)
		for i, m := range st.p.Candidates {
			if st.selected[i] {
				continue
			}
			gain := st.newHTs(i)
			if gain == 0 {
				continue // α_i = ∞
			}
			denom := need
			if gain < denom {
				denom = gain
			}
			alpha := float64(m.Size()) / float64(denom)
			if alpha < bestAlpha {
				bestAlpha, best = alpha, i
			}
		}
		if best == -1 {
			return ErrNoEligible // universe cannot span ℓ distinct HTs
		}
		st.add(best)
	}
	return nil
}
