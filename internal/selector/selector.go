// Package selector implements the paper's DA-MS solvers:
//
//   - BFS: the exact breadth-first search (Algorithm 2 + GetDTRSs), feasible
//     only on small universes; it realises the full Definition-5 constraint
//     set (diversity, non-eliminated, immutability) via exact enumeration.
//   - Progressive: the two-phase greedy approximation (Algorithm 4) with
//     ratio ε + q_M·z_M·10^γ (Theorem 6.5).
//   - Game: the potential-game best-response algorithm (Algorithm 5),
//     convergent in O(n³) (Theorem 6.6) with PoS ≤ 1 (Theorem 6.7).
//   - Smallest, Random: the paper's two baselines (TM_S, TM_R).
//
// All practical solvers work under the paper's two practical configurations:
// a new ring is a union of "modules" (super rings and fresh tokens,
// Definitions 7–8), and its HT multiset must satisfy the headroom
// requirement (c, ℓ+1) so that every DTRS retains (c, ℓ) (Theorem 6.4) and
// existing rings keep their declared diversity (immutability for free).
package selector

import (
	"errors"
	"fmt"
	"math"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
)

// Module is a selectable unit under the first practical configuration:
// either one super ring signature or one fresh token.
type Module struct {
	Tokens chain.TokenSet
	Fresh  bool       // true when the module is a single fresh token
	Super  chain.RSID // the super ring's id when !Fresh
}

// Size returns |x_i|, the token count of the module.
func (m Module) Size() int { return len(m.Tokens) }

// Super is a super ring signature (Definition 7) with its subset count v.
type Super struct {
	Ring        chain.RingRecord
	SubsetCount int // v: rings in R_π^T that are subsets of this ring (incl. itself)
}

// Decompose splits the related RS set over a universe into super rings and
// fresh tokens (Definitions 7 and 8). rings must be in proposal order.
// A ring is super when no later ring is a superset of it; a token is fresh
// when no ring contains it.
func Decompose(rings []chain.RingRecord, universe chain.TokenSet) (supers []Super, fresh chain.TokenSet) {
	for i, ri := range rings {
		isSuper := true
		for j := i + 1; j < len(rings); j++ {
			if ri.Tokens.SubsetOf(rings[j].Tokens) {
				isSuper = false
				break
			}
		}
		if !isSuper {
			continue
		}
		v := 0
		for _, rj := range rings {
			if rj.Tokens.SubsetOf(ri.Tokens) {
				v++
			}
		}
		supers = append(supers, Super{Ring: ri, SubsetCount: v})
	}
	covered := chain.TokenSet{}
	for _, r := range rings {
		covered = covered.Union(r.Tokens)
	}
	fresh = universe.Minus(covered)
	return supers, fresh
}

// Problem is one modular DA-MS instance: choose a minimum-cardinality union
// of modules containing the mandatory module such that the union's HT
// multiset satisfies Req.
type Problem struct {
	// Target is the token being consumed.
	Target chain.TokenID
	// Mandatory is the module containing Target (its super ring, or the
	// token itself when fresh). It is always part of the result.
	Mandatory Module
	// Candidates are the other selectable modules.
	Candidates []Module
	// Origin maps tokens to historical transactions.
	Origin func(chain.TokenID) chain.TxID
	// Req is the effective diversity requirement the result's HT multiset
	// must satisfy. Callers wanting the second practical configuration pass
	// the user requirement tightened via Requirement.WithHeadroom.
	Req diversity.Requirement
}

// NewProblem assembles a Problem from a decomposition. It locates the module
// containing target among supers/fresh and returns an error if the target is
// not in the universe described by the decomposition.
func NewProblem(target chain.TokenID, supers []Super, fresh chain.TokenSet, origin func(chain.TokenID) chain.TxID, req diversity.Requirement) (*Problem, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	p := &Problem{Target: target, Origin: origin, Req: req}
	found := false
	for _, s := range supers {
		m := Module{Tokens: s.Ring.Tokens, Super: s.Ring.ID}
		if s.Ring.Tokens.Contains(target) {
			if found {
				return nil, fmt.Errorf("selector: target %v in multiple super rings (configuration violated)", target)
			}
			p.Mandatory = m
			found = true
			continue
		}
		p.Candidates = append(p.Candidates, m)
	}
	for _, t := range fresh {
		m := Module{Tokens: chain.NewTokenSet(t), Fresh: true}
		if t == target {
			if found {
				return nil, fmt.Errorf("selector: target %v is both fresh and in a super ring", target)
			}
			p.Mandatory = m
			found = true
			continue
		}
		p.Candidates = append(p.Candidates, m)
	}
	if !found {
		return nil, fmt.Errorf("selector: target %v not in universe", target)
	}
	return p, nil
}

// Result is a solved DA-MS instance.
type Result struct {
	// Tokens is the full new ring signature: the consuming token plus
	// mixins, as the union of the chosen modules.
	Tokens chain.TokenSet
	// Modules is how many modules were chosen (including the mandatory one).
	Modules int
	// Iterations counts algorithm-specific work: greedy steps for
	// Progressive/Smallest/Random, best-response passes for Game, candidate
	// rings examined for BFS.
	Iterations int
}

// Size returns the cardinality of the new ring.
func (r Result) Size() int { return len(r.Tokens) }

// ErrNoEligible is returned when no ring satisfying the constraints exists
// over the given modules; per Section 4 the user should relax (c, ℓ) —
// increase c or decrease ℓ — and retry.
var ErrNoEligible = errors.New("selector: no eligible ring signature exists; relax the diversity requirement")

// state tracks the running selection shared by the greedy algorithms.
type state struct {
	p        *Problem
	tokens   chain.TokenSet
	hist     *diversity.Histogram
	selected []bool // over p.Candidates
	modules  int
	iters    int
}

func newState(p *Problem) *state {
	return &state{
		p:        p,
		tokens:   p.Mandatory.Tokens.Clone(),
		hist:     diversity.HistogramOf(p.Mandatory.Tokens, p.Origin),
		selected: make([]bool, len(p.Candidates)),
		modules:  1,
	}
}

// add selects candidate i.
func (st *state) add(i int) {
	st.selected[i] = true
	st.modules++
	for _, t := range st.p.Candidates[i].Tokens {
		st.hist.Add(st.p.Origin(t))
	}
	st.tokens = st.tokens.Union(st.p.Candidates[i].Tokens)
}

// remove deselects candidate i. Only valid when modules do not overlap
// (guaranteed under the first practical configuration).
func (st *state) remove(i int) {
	st.selected[i] = false
	st.modules--
	for _, t := range st.p.Candidates[i].Tokens {
		st.hist.Remove(st.p.Origin(t))
	}
	st.tokens = st.tokens.Minus(st.p.Candidates[i].Tokens)
}

func (st *state) result() Result {
	return Result{Tokens: st.tokens, Modules: st.modules, Iterations: st.iters}
}

// newHTs counts |H_i \ H|: distinct HTs the module would newly contribute.
func (st *state) newHTs(m Module) int {
	seen := make(map[chain.TxID]bool, len(m.Tokens))
	n := 0
	for _, t := range m.Tokens {
		h := st.p.Origin(t)
		if !seen[h] && st.hist.Count(h) == 0 {
			n++
		}
		seen[h] = true
	}
	return n
}

// slackWith returns δ_i: the requirement slack if module i were added.
func (st *state) slackWith(i int) float64 {
	h := st.hist.Clone()
	for _, t := range st.p.Candidates[i].Tokens {
		h.Add(st.p.Origin(t))
	}
	return h.Slack(st.p.Req)
}

// coverHTPhase runs the shared first phase of Progressive and Game
// (Algorithm 4 lines 2–4 / Algorithm 5 lines 2–4): greedily add the module
// with minimal α_i = |x_i| / min(ℓ−|H|, |H_i \ H|) until the selection spans
// at least ℓ distinct HTs.
func (st *state) coverHTPhase() error {
	for st.hist.Classes() < st.p.Req.L {
		st.iters++
		need := st.p.Req.L - st.hist.Classes()
		best := -1
		bestAlpha := math.Inf(1)
		for i, m := range st.p.Candidates {
			if st.selected[i] {
				continue
			}
			gain := st.newHTs(m)
			if gain == 0 {
				continue // α_i = ∞
			}
			denom := need
			if gain < denom {
				denom = gain
			}
			alpha := float64(m.Size()) / float64(denom)
			if alpha < bestAlpha {
				bestAlpha, best = alpha, i
			}
		}
		if best == -1 {
			return ErrNoEligible // universe cannot span ℓ distinct HTs
		}
		st.add(best)
	}
	return nil
}
