package selector

import (
	"errors"
	"math/rand"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
)

// modularOptimum brute-forces the smallest feasible module union containing
// the mandatory module — the OPT of Theorems 6.5/6.7 (which are stated over
// the modular solution space).
func modularOptimum(p *Problem) (int, bool) {
	n := len(p.Candidates)
	best := -1
	for mask := 0; mask < 1<<n; mask++ {
		tokens := p.Mandatory.Tokens
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				tokens = tokens.Union(p.Candidates[i].Tokens)
			}
		}
		if !diversity.SatisfiesTokens(tokens, p.Origin, p.Req) {
			continue
		}
		if best == -1 || len(tokens) < best {
			best = len(tokens)
		}
	}
	return best, best != -1
}

func randomModularProblem(rng *rand.Rand) *Problem {
	nHT := 3 + rng.Intn(4)
	hts := make(map[chain.TokenID]chain.TxID)
	next := chain.TokenID(0)
	var rings []chain.RingRecord
	var universe chain.TokenSet
	for s := 0; s < 2+rng.Intn(3); s++ {
		var toks []chain.TokenID
		for k := 0; k < 1+rng.Intn(4); k++ {
			hts[next] = chain.TxID(rng.Intn(nHT))
			toks = append(toks, next)
			next++
		}
		rings = append(rings, chain.RingRecord{ID: chain.RSID(s), Tokens: chain.NewTokenSet(toks...), Pos: s})
		universe = universe.Union(chain.NewTokenSet(toks...))
	}
	for f := 0; f < rng.Intn(4); f++ {
		hts[next] = chain.TxID(rng.Intn(nHT))
		universe = universe.Add(next)
		next++
	}
	origin := func(t chain.TokenID) chain.TxID {
		if h, ok := hts[t]; ok {
			return h
		}
		return chain.NoTx
	}
	target := universe[rng.Intn(len(universe))]
	req := diversity.Requirement{C: 0.5 + 1.5*rng.Float64(), L: 1 + rng.Intn(3)}
	supers, fresh := Decompose(rings, universe)
	p, err := NewProblem(target, supers, fresh, origin, req)
	if err != nil {
		return nil
	}
	return p
}

// Theorem 6.5: Progressive's result size stays within
// ε + q_M·z_M·10^γ of the modular optimum, where ε = Σ_{i≤ℓ} 1/i. The bound
// is very loose; we check it exactly as stated.
func TestProgressiveApproximationBound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	checked := 0
	for trial := 0; trial < 200 && checked < 60; trial++ {
		p := randomModularProblem(rng)
		if p == nil {
			continue
		}
		res, err := Progressive(p)
		if errors.Is(err, ErrNoEligible) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		opt, ok := modularOptimum(p)
		if !ok {
			t.Fatalf("solver found %v but brute force found nothing", res.Tokens)
		}
		checked++

		// Assemble the Theorem-6.5 ratio bound.
		eps := 0.0
		for i := 1; i <= p.Req.L; i++ {
			eps += 1 / float64(i)
		}
		hist := diversity.HistogramOf(unionAll(p), p.Origin)
		qM := float64(hist.MaxCount())
		zM := 0.0
		for _, m := range append([]Module{p.Mandatory}, p.Candidates...) {
			if !m.Fresh && float64(m.Size()) > zM {
				zM = float64(m.Size())
			}
		}
		gamma := gammaOf(p.Req.C)
		bound := eps + qM*zM*gamma
		if ratio := float64(res.Size()) / float64(opt); ratio > bound+1e-9 {
			t.Fatalf("ratio %.2f exceeds Theorem 6.5 bound %.2f (size %d, opt %d, req %v)",
				ratio, bound, res.Size(), opt, p.Req)
		}
	}
	if checked < 20 {
		t.Fatalf("only %d feasible instances checked", checked)
	}
}

// Theorem 6.7: the Game equilibrium size is within
// q_M·(1 + 1/(c·ℓ)) + z_M/ℓ of OPT (PoA bound); PoS ≤ 1 means the *best*
// equilibrium matches OPT, which a single run cannot witness, so we check
// the PoA side.
func TestGamePoABound(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	checked := 0
	for trial := 0; trial < 200 && checked < 60; trial++ {
		p := randomModularProblem(rng)
		if p == nil {
			continue
		}
		res, err := Game(p)
		if errors.Is(err, ErrNoEligible) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		opt, ok := modularOptimum(p)
		if !ok {
			t.Fatalf("solver found %v but brute force found nothing", res.Tokens)
		}
		checked++

		hist := diversity.HistogramOf(unionAll(p), p.Origin)
		qM := float64(hist.MaxCount())
		zM := 0.0
		for _, m := range append([]Module{p.Mandatory}, p.Candidates...) {
			if !m.Fresh && float64(m.Size()) > zM {
				zM = float64(m.Size())
			}
		}
		cl := p.Req.C * float64(p.Req.L)
		bound := qM*(1+1/cl) + zM/float64(p.Req.L)
		if bound < 1 {
			bound = 1 // PoA is a ratio; it is never below 1
		}
		if ratio := float64(res.Size()) / float64(opt); ratio > bound+1e-9 {
			t.Fatalf("PoA ratio %.2f exceeds Theorem 6.7 bound %.2f (size %d, opt %d, req %v)",
				ratio, bound, res.Size(), opt, p.Req)
		}
	}
	if checked < 20 {
		t.Fatalf("only %d feasible instances checked", checked)
	}
}

// Theorem 6.6's convergence bound: best-response sweeps are O(n); assert the
// implementation's sweep counter stays within its own cap on random inputs
// (i.e. it always converges before the guard).
func TestGameConvergesWithinSweepCap(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		p := randomModularProblem(rng)
		if p == nil {
			continue
		}
		res, err := Game(p)
		if errors.Is(err, ErrNoEligible) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		cap := 4*len(p.Candidates) + 16
		if res.Iterations > cap {
			t.Fatalf("sweeps %d exceeded cap %d", res.Iterations, cap)
		}
	}
}

func unionAll(p *Problem) chain.TokenSet {
	u := p.Mandatory.Tokens
	for _, m := range p.Candidates {
		u = u.Union(m.Tokens)
	}
	return u
}

// gammaOf returns 10^γ where γ is the smallest integer making 10^γ·c an
// integer (the paper's δ-granularity constant).
func gammaOf(c float64) float64 {
	scale := 1.0
	for i := 0; i < 12; i++ {
		v := c * scale
		if v == float64(int64(v)) {
			return scale
		}
		scale *= 10
	}
	return scale
}
