package selector

import (
	"errors"
	"math/rand"

	"tokenmagic/internal/chain"
)

// MoneroParams configures the Monero-style SM sampler described in
// Section 2.1: the user picks a ring size ζ (> 10 in Monero); half of the
// mixins are drawn from "recent" tokens (blocks of the last ~1.8 days) and
// the rest from older tokens, all uniformly at random. The sampler ignores
// diversity and chain-reaction structure entirely — it is the production
// status quo the paper improves on, included here so experiments can
// measure exactly what that costs.
type MoneroParams struct {
	// Zeta is the ring size (consumed token + ζ−1 mixins). Monero uses 11.
	Zeta int
	// Recent is the pool of recently generated tokens; Older the rest.
	// Either may be empty, in which case all mixins come from the other.
	Recent chain.TokenSet
	Older  chain.TokenSet
}

// ErrUniverseTooSmall is returned when the pools cannot fill the ring.
var ErrUniverseTooSmall = errors.New("selector: not enough tokens for the requested ring size")

// MoneroSample draws a ring for the target with the SM strategy. It never
// fails for diversity reasons (it checks none); it fails only when the
// pools are too small.
func MoneroSample(target chain.TokenID, p MoneroParams, rng *rand.Rand) (Result, error) {
	if p.Zeta < 2 {
		return Result{}, errors.New("selector: ζ must be at least 2")
	}
	recent := p.Recent.Remove(target)
	older := p.Older.Remove(target)
	need := p.Zeta - 1
	fromRecent := need / 2
	if fromRecent > len(recent) {
		fromRecent = len(recent)
	}
	fromOlder := need - fromRecent
	if fromOlder > len(older) {
		// Backfill from recent when the older pool is short.
		spill := fromOlder - len(older)
		fromOlder = len(older)
		fromRecent += spill
		if fromRecent > len(recent) {
			return Result{}, ErrUniverseTooSmall
		}
	}
	ring := chain.NewTokenSet(target)
	for _, tok := range samplePool(recent, fromRecent, rng) {
		ring = ring.Add(tok)
	}
	for _, tok := range samplePool(older, fromOlder, rng) {
		ring = ring.Add(tok)
	}
	if len(ring) != p.Zeta {
		return Result{}, ErrUniverseTooSmall
	}
	return Result{Tokens: ring, Modules: len(ring), Iterations: 1}, nil
}

// samplePool draws k distinct tokens from the pool uniformly at random.
func samplePool(pool chain.TokenSet, k int, rng *rand.Rand) []chain.TokenID {
	if k >= len(pool) {
		return pool
	}
	idx := rng.Perm(len(pool))[:k]
	out := make([]chain.TokenID, k)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}
