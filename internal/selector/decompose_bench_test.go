package selector

import (
	"testing"

	"tokenmagic/internal/workload"
)

// BenchmarkDecompose covers the sorted-by-size decomposition pass on the
// default synthetic universe (~50 super rings over ~760 tokens).
func BenchmarkDecompose(b *testing.B) {
	d, err := workload.Synthetic(workload.DefaultSynthetic())
	if err != nil {
		b.Fatal(err)
	}
	rings := d.Rings()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		supers, _ := Decompose(rings, d.Universe)
		if len(supers) == 0 {
			b.Fatal("no supers")
		}
	}
}

// BenchmarkDecomposeReal covers the real Monero data set's ring population.
func BenchmarkDecomposeReal(b *testing.B) {
	d, err := workload.RealMonero(1)
	if err != nil {
		b.Fatal(err)
	}
	rings := d.Rings()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decompose(rings, d.Universe)
	}
}
