package selector

// Solver-equivalence tests: reference implementations of the greedy solvers
// built on the pre-engine evaluation strategy (clone the histogram map, call
// Origin per token, sort frequencies from scratch) must return byte-identical
// rings and module counts to the rewritten allocation-free solvers on seeded
// instances.

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/workload"
)

// refHist is the naive histogram: a count map recomputed with a sort on
// every slack query, exactly the shape of the pre-engine code path.
type refHist struct {
	counts map[chain.TxID]int
	total  int
}

func newRefHist() *refHist { return &refHist{counts: map[chain.TxID]int{}} }

func (h *refHist) add(tx chain.TxID) { h.counts[tx]++; h.total++ }

func (h *refHist) remove(tx chain.TxID) {
	if c := h.counts[tx]; c > 0 {
		if c == 1 {
			delete(h.counts, tx)
		} else {
			h.counts[tx] = c - 1
		}
		h.total--
	}
}

func (h *refHist) clone() *refHist {
	out := &refHist{counts: make(map[chain.TxID]int, len(h.counts)), total: h.total}
	for k, v := range h.counts {
		out.counts[k] = v
	}
	return out
}

func (h *refHist) classes() int { return len(h.counts) }

func (h *refHist) slack(req diversity.Requirement) float64 {
	if h.total == 0 {
		return -1
	}
	qs := make([]int, 0, len(h.counts))
	for _, c := range h.counts {
		qs = append(qs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(qs)))
	tail := 0.0
	for i := req.L - 1; i < len(qs); i++ {
		tail += float64(qs[i])
	}
	return float64(qs[0]) - req.C*tail
}

func (h *refHist) satisfies(req diversity.Requirement) bool { return h.slack(req) < 0 }

// refState mirrors the pre-engine selection state: explicit TokenSet unions
// and per-token Origin calls.
type refState struct {
	p        *Problem
	tokens   chain.TokenSet
	hist     *refHist
	selected []bool
	modules  int
	iters    int
}

func newRefState(p *Problem) *refState {
	st := &refState{
		p:        p,
		tokens:   p.Mandatory.Tokens.Clone(),
		hist:     newRefHist(),
		selected: make([]bool, len(p.Candidates)),
		modules:  1,
	}
	for _, t := range p.Mandatory.Tokens {
		st.hist.add(p.Origin(t))
	}
	return st
}

func (st *refState) add(i int) {
	st.selected[i] = true
	st.modules++
	for _, t := range st.p.Candidates[i].Tokens {
		st.hist.add(st.p.Origin(t))
	}
	st.tokens = st.tokens.Union(st.p.Candidates[i].Tokens)
}

func (st *refState) remove(i int) {
	st.selected[i] = false
	st.modules--
	for _, t := range st.p.Candidates[i].Tokens {
		st.hist.remove(st.p.Origin(t))
	}
	st.tokens = st.tokens.Minus(st.p.Candidates[i].Tokens)
}

func (st *refState) result() Result {
	return Result{Tokens: st.tokens, Modules: st.modules, Iterations: st.iters}
}

func (st *refState) newHTs(m Module) int {
	seen := make(map[chain.TxID]bool, len(m.Tokens))
	n := 0
	for _, t := range m.Tokens {
		h := st.p.Origin(t)
		if !seen[h] && st.hist.counts[h] == 0 {
			n++
		}
		seen[h] = true
	}
	return n
}

func (st *refState) slackWith(i int) float64 {
	h := st.hist.clone()
	for _, t := range st.p.Candidates[i].Tokens {
		h.add(st.p.Origin(t))
	}
	return h.slack(st.p.Req)
}

func (st *refState) coverHTPhase() error {
	for st.hist.classes() < st.p.Req.L {
		st.iters++
		need := st.p.Req.L - st.hist.classes()
		best := -1
		bestAlpha := math.Inf(1)
		for i, m := range st.p.Candidates {
			if st.selected[i] {
				continue
			}
			gain := st.newHTs(m)
			if gain == 0 {
				continue
			}
			denom := need
			if gain < denom {
				denom = gain
			}
			alpha := float64(m.Size()) / float64(denom)
			if alpha < bestAlpha {
				bestAlpha, best = alpha, i
			}
		}
		if best == -1 {
			return ErrNoEligible
		}
		st.add(best)
	}
	return nil
}

func refProgressive(p *Problem) (Result, error) {
	st := newRefState(p)
	if st.hist.satisfies(p.Req) {
		return st.result(), nil
	}
	if err := st.coverHTPhase(); err != nil {
		return Result{}, err
	}
	for !st.hist.satisfies(p.Req) {
		st.iters++
		delta := st.hist.slack(p.Req)
		best := -1
		bestBeta := math.Inf(-1)
		for i, m := range p.Candidates {
			if st.selected[i] {
				continue
			}
			beta := (delta - st.slackWith(i)) / float64(m.Size())
			if beta > bestBeta {
				bestBeta, best = beta, i
			}
		}
		if best == -1 {
			return Result{}, ErrNoEligible
		}
		st.add(best)
	}
	return st.result(), nil
}

func refGame(p *Problem) (Result, error) {
	st := newRefState(p)
	if !st.hist.satisfies(p.Req) {
		if err := st.coverHTPhase(); err != nil {
			return Result{}, err
		}
	}
	nPlayers := len(p.Candidates)
	if nPlayers == 0 {
		if st.hist.satisfies(p.Req) {
			return st.result(), nil
		}
		return Result{}, ErrNoEligible
	}
	cost := func() float64 {
		if st.hist.satisfies(p.Req) {
			return float64(len(st.tokens)) / float64(nPlayers)
		}
		return math.Inf(1)
	}
	order := make([]int, nPlayers)
	for i := range order {
		order[i] = i
	}
	sortBySizeAsc(order, p.Candidates)
	maxSweeps := 4*nPlayers + 16
	for sweep := 0; sweep < maxSweeps; sweep++ {
		st.iters++
		changed := false
		for _, i := range order {
			wasSelected := st.selected[i]
			if !wasSelected {
				st.add(i)
			}
			costSel := cost()
			st.remove(i)
			costUnsel := cost()
			wantSelected := costSel <= costUnsel
			if wantSelected {
				st.add(i)
			}
			if wantSelected != wasSelected {
				changed = true
			}
		}
		if !changed {
			if !st.hist.satisfies(p.Req) {
				return Result{}, ErrNoEligible
			}
			return st.result(), nil
		}
	}
	if st.hist.satisfies(p.Req) {
		return st.result(), nil
	}
	return Result{}, ErrNoEligible
}

func refSmallest(p *Problem) (Result, error) {
	st := newRefState(p)
	for !st.hist.satisfies(p.Req) {
		st.iters++
		best := -1
		for i, m := range p.Candidates {
			if st.selected[i] {
				continue
			}
			if best == -1 || m.Size() < p.Candidates[best].Size() {
				best = i
			}
		}
		if best == -1 {
			return Result{}, ErrNoEligible
		}
		st.add(best)
	}
	return st.result(), nil
}

func refRandom(p *Problem, rng *rand.Rand) (Result, error) {
	st := newRefState(p)
	var unselected []int
	for i := range p.Candidates {
		unselected = append(unselected, i)
	}
	for !st.hist.satisfies(p.Req) {
		st.iters++
		if len(unselected) == 0 {
			return Result{}, ErrNoEligible
		}
		k := rng.Intn(len(unselected))
		st.add(unselected[k])
		unselected[k] = unselected[len(unselected)-1]
		unselected = unselected[:len(unselected)-1]
	}
	return st.result(), nil
}

func assertSameResult(t *testing.T, tag string, got, want Result, gotErr, wantErr error) {
	t.Helper()
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: err %v, reference err %v", tag, gotErr, wantErr)
	}
	if gotErr != nil {
		return
	}
	if !got.Tokens.Equal(want.Tokens) {
		t.Fatalf("%s: tokens differ\n got %v\nwant %v", tag, got.Tokens, want.Tokens)
	}
	if got.Modules != want.Modules {
		t.Fatalf("%s: modules %d, reference %d", tag, got.Modules, want.Modules)
	}
	if got.Iterations != want.Iterations {
		t.Fatalf("%s: iterations %d, reference %d", tag, got.Iterations, want.Iterations)
	}
}

func equivalenceDatasets(t *testing.T) map[string]*workload.Dataset {
	t.Helper()
	out := make(map[string]*workload.Dataset)
	real, err := workload.RealMonero(1)
	if err != nil {
		t.Fatal(err)
	}
	out["real"] = real
	for _, seed := range []int64{2, 3, 5} {
		p := workload.DefaultSynthetic()
		p.Seed = seed
		d, err := workload.Synthetic(p)
		if err != nil {
			t.Fatal(err)
		}
		out[string(rune('a'+seed))+"synthetic"] = d
	}
	return out
}

// TestSolverEquivalence runs every practical solver against its reference
// implementation on seeded real and synthetic instances and requires
// identical rings, module counts and iteration counts.
func TestSolverEquivalence(t *testing.T) {
	for name, d := range equivalenceDatasets(t) {
		rings := d.Rings()
		supers, fresh := Decompose(rings, d.Universe)
		origin := d.Origin()
		reqs := []diversity.Requirement{
			{C: 0.6, L: 41}, {C: 0.6, L: 11}, {C: 1, L: 5}, {C: 0.3, L: 2},
		}
		rng := rand.New(rand.NewSource(42))
		for _, req := range reqs {
			for n := 0; n < 25; n++ {
				target := d.Universe[rng.Intn(len(d.Universe))]
				p, err := NewProblem(target, supers, fresh, origin, req)
				if err != nil {
					t.Fatal(err)
				}
				pRef, err := NewProblem(target, supers, fresh, origin, req)
				if err != nil {
					t.Fatal(err)
				}

				got, gotErr := Progressive(p)
				want, wantErr := refProgressive(pRef)
				assertSameResult(t, name+"/TM_P", got, want, gotErr, wantErr)

				got, gotErr = Game(p)
				want, wantErr = refGame(pRef)
				assertSameResult(t, name+"/TM_G", got, want, gotErr, wantErr)

				got, gotErr = Smallest(p)
				want, wantErr = refSmallest(pRef)
				assertSameResult(t, name+"/TM_S", got, want, gotErr, wantErr)

				rngA := rand.New(rand.NewSource(int64(n)))
				rngB := rand.New(rand.NewSource(int64(n)))
				got, gotErr = Random(p, rngA)
				want, wantErr = refRandom(pRef, rngB)
				assertSameResult(t, name+"/TM_R", got, want, gotErr, wantErr)
			}
		}
	}
}
