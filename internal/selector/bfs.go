package selector

import (
	"context"
	"errors"
	"fmt"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/dtrs"
	"tokenmagic/internal/obs/trace"
	"tokenmagic/internal/rsgraph"
)

// ExactProblem is a raw DA-MS instance for the exact BFS solver: no modular
// configuration, all three Definition-5 constraints checked by enumeration.
type ExactProblem struct {
	Target   chain.TokenID
	Universe chain.TokenSet
	// Rings is the related RS set over the universe, in proposal order, each
	// carrying its declared (c, ℓ) requirement for the immutability check.
	Rings  []chain.RingRecord
	Origin func(chain.TokenID) chain.TxID
	Req    diversity.Requirement
	// Enum caps the exponential enumerations; zero values use the rsgraph
	// defaults.
	Enum rsgraph.EnumOptions
}

// ErrExactTooLarge wraps rsgraph.ErrWorkCapExceeded with solver context.
var ErrExactTooLarge = errors.New("selector: exact search exceeded its work cap")

// bfsCancelStride is how many enumerated candidate sets pass between
// cancellation polls inside one frontier; the boundary between frontiers
// (ring sizes) is always checked.
const bfsCancelStride = 4096

// BFS finds a minimum-cardinality ring for the target satisfying all three
// DA-MS constraints, by trying candidate mixin sets in ascending size order
// (Algorithm 2). Exponential: use only on Figure-4-scale instances.
func BFS(p *ExactProblem) (Result, error) {
	return BFSCtx(context.Background(), p)
}

// BFSCtx is BFS with cooperative cancellation: the search checks ctx at
// every frontier boundary (each candidate ring size k) and every
// bfsCancelStride enumerated subsets within a frontier, so even the
// exponential inner loop abandons promptly.
func BFSCtx(ctx context.Context, p *ExactProblem) (res Result, err error) {
	defer solveObs("TM_B")(&res, &err)
	sp := trace.StartChild(ctx, "solve")
	sp.Annotate("solver", "TM_B")
	defer func() {
		sp.AnnotateInt("ring_size", int64(res.Size()))
		sp.End()
	}()
	if err := p.Req.Validate(); err != nil {
		return Result{}, err
	}
	if !p.Universe.Contains(p.Target) {
		return Result{}, fmt.Errorf("selector: target %v not in universe", p.Target)
	}
	sigma := p.Universe.Remove(p.Target) // candidate mixins
	iters := 0

	// Precompute every candidate's HT once and reuse one incremental
	// histogram across the enumeration: the diversity constraint is checked
	// allocation-free before any candidate ring is materialised or the
	// exponential DTRS machinery runs.
	hts := make([]chain.TxID, len(sigma))
	//lint:ignore ctxpoll bounded warm-up over the universe (one Origin lookup per token), not the exponential frontier loop below, which polls every bfsCancelStride subsets
	for i, t := range sigma {
		hts[i] = p.Origin(t)
	}
	targetHT := p.Origin(p.Target)
	h := diversity.NewHistogram()

	// Minimum mixin count: the ring needs ≥ ℓ distinct HTs, hence ≥ ℓ
	// tokens, hence ≥ ℓ−1 mixins (Algorithm 2 line 2).
	start := p.Req.L - 1
	if start < 1 {
		start = 1 // a ring of size 1 can never hide its token
	}
	for k := start; k <= len(sigma); k++ {
		if cancelled(ctx) {
			return Result{}, ctxErr(ctx) // frontier boundary
		}
		var found chain.TokenSet
		err := forEachIndexSubset(len(sigma), k, func(idx []int) (bool, error) {
			iters++
			if iters%bfsCancelStride == 0 && cancelled(ctx) {
				return false, ctxErr(ctx)
			}
			// Diversity pre-check (Algorithm 2 lines 6–8) on the index.
			h.Reset()
			h.Add(targetHT)
			for _, j := range idx {
				h.Add(hts[j])
			}
			if !h.Satisfies(p.Req) {
				return true, nil
			}
			mixins := make(chain.TokenSet, k)
			for i, j := range idx {
				mixins[i] = sigma[j]
			}
			rs := mixins.Add(p.Target)
			ok, err := eligible(p, rs)
			if err != nil {
				return false, err
			}
			if ok {
				found = rs
				return false, nil // stop: first hit at this size is minimal
			}
			return true, nil
		})
		if err != nil {
			return Result{}, err
		}
		if found != nil {
			return Result{Tokens: found, Modules: 0, Iterations: iters}, nil
		}
	}
	return Result{}, ErrNoEligible
}

// eligible checks the non-eliminated and immutability constraints for a
// candidate ring; the caller has already verified the diversity constraint
// on the incremental index.
func eligible(p *ExactProblem, rs chain.TokenSet) (bool, error) {
	// Build the instance: related rings plus the candidate (lines 5, 9).
	related := rsgraph.RelatedSet(p.Rings, rs)
	rings := make([]rsgraph.Ring, 0, len(related)+1)
	reqs := make([]diversity.Requirement, 0, len(related)+1)
	for _, r := range related {
		rings = append(rings, rsgraph.Ring{ID: r.ID, Tokens: r.Tokens})
		reqs = append(reqs, diversity.Requirement{C: r.C, L: r.L})
	}
	rings = append(rings, rsgraph.Ring{ID: chain.RSID(len(p.Rings)), Tokens: rs})
	reqs = append(reqs, p.Req)
	in := rsgraph.NewInstance(rings)

	// Non-eliminated constraint (lines 10–16): every token of every ring
	// must be a feasible consumed token.
	if !in.NonEliminated() {
		return false, nil
	}

	// Immutability + candidate DTRS diversity (lines 17–22): each ring's
	// DTRSs must satisfy that ring's declared requirement.
	for k := range rings {
		ok, err := dtrs.AllSatisfyExact(in, k, p.Origin, reqs[k], p.Enum)
		if err != nil {
			if errors.Is(err, rsgraph.ErrWorkCapExceeded) {
				return false, fmt.Errorf("%w: %v", ErrExactTooLarge, err)
			}
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// forEachIndexSubset enumerates size-k subsets of {0, …, n−1} in
// lexicographic order. The yielded slice is reused between calls; the
// callback must not retain it. It returns (continue, error).
func forEachIndexSubset(n, k int, f func([]int) (bool, error)) error {
	if k > n || k < 0 {
		return nil
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		cont, err := f(idx)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return nil
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
