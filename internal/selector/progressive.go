package selector

import (
	"context"
	"math"

	"tokenmagic/internal/obs/trace"
)

// Progressive solves the modular DA-MS instance with the two-phase greedy of
// Algorithm 4. Phase one covers ℓ distinct historical transactions by
// minimising α_i = |x_i| / min(ℓ−|H|, |H_i\H|); phase two drives the
// diversity slack δ = q₁ − c·(q_ℓ+…+q_θ) below zero by maximising the
// improvement-per-token ratio β_i = (δ − δ_i)/|x_i|. Approximation ratio:
// Theorem 6.5.
func Progressive(p *Problem) (Result, error) {
	return ProgressiveCtx(context.Background(), p)
}

// ProgressiveCtx is Progressive with cooperative cancellation: the greedy
// loops poll ctx at every step, so a caller that already has a satisfying
// candidate (the parallel executor) can abandon in-flight solves cheaply.
func ProgressiveCtx(ctx context.Context, p *Problem) (res Result, err error) {
	defer solveObs("TM_P")(&res, &err)
	sp := trace.StartChild(ctx, "solve")
	sp.Annotate("solver", "TM_P")
	defer func() {
		sp.AnnotateInt("ring_size", int64(res.Size()))
		sp.End()
	}()
	st := newState(p)
	if st.hist.Satisfies(p.Req) {
		return st.result(), nil
	}
	if err := st.coverHTPhase(ctx); err != nil {
		return Result{}, err
	}
	for !st.hist.Satisfies(p.Req) {
		if cancelled(ctx) {
			return Result{}, ctxErr(ctx)
		}
		st.iters++
		delta := st.hist.Slack(p.Req)
		best := -1
		bestBeta := math.Inf(-1)
		for i, m := range p.Candidates {
			if st.selected[i] {
				continue
			}
			beta := (delta - st.slackWith(i)) / float64(m.Size())
			if beta > bestBeta {
				bestBeta, best = beta, i
			}
		}
		if best == -1 {
			return Result{}, ErrNoEligible // all modules used, still infeasible
		}
		st.add(best)
	}
	return st.result(), nil
}
