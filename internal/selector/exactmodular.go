package selector

import (
	"errors"

	"tokenmagic/internal/diversity"
)

// ExactModular finds the true minimum-cardinality module union for a
// Problem by exhaustive subset search over the candidate modules. It is the
// OPT of Theorems 6.5 and 6.7 — exact over the *modular* solution space the
// practical configurations induce (the raw-token optimum of Algorithm 2 can
// be smaller, but is not reachable under the configurations).
//
// Complexity is O(2^n) over n candidate modules, so the search refuses
// instances beyond maxModules (default 20). Use it as the quality oracle in
// experiments; production selection uses Progressive or Game.
func ExactModular(p *Problem, maxModules int) (Result, error) {
	if err := p.Req.Validate(); err != nil {
		return Result{}, err
	}
	if maxModules <= 0 {
		maxModules = 20
	}
	n := len(p.Candidates)
	if n > maxModules {
		return Result{}, ErrModularTooLarge
	}

	best := Result{}
	found := false
	iters := 0
	for mask := 0; mask < 1<<n; mask++ {
		iters++
		tokens := p.Mandatory.Tokens
		modules := 1
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				tokens = tokens.Union(p.Candidates[i].Tokens)
				modules++
			}
		}
		if found && len(tokens) >= best.Size() {
			continue
		}
		if !diversity.SatisfiesTokens(tokens, p.Origin, p.Req) {
			continue
		}
		best = Result{Tokens: tokens, Modules: modules}
		found = true
	}
	best.Iterations = iters
	if !found {
		return Result{}, ErrNoEligible
	}
	return best, nil
}

// ErrModularTooLarge reports an instance beyond the exact search's cap.
var ErrModularTooLarge = errors.New("selector: too many modules for exact search")

// Gap measures one solver's result against the exact modular optimum:
// ratio = size / OPT (1 means optimal). Returns ErrModularTooLarge or
// ErrNoEligible from the underlying search.
func Gap(p *Problem, res Result, maxModules int) (float64, error) {
	opt, err := ExactModular(p, maxModules)
	if err != nil {
		return 0, err
	}
	return float64(res.Size()) / float64(opt.Size()), nil
}
