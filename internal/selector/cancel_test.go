package selector

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
)

// Every solver must notice a dead context at its next loop boundary and
// surface context.Canceled instead of a result; this is what lets the
// parallel executor abandon in-flight sibling solves.
func TestSolversHonourCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // pre-cancelled: solvers must bail at the first poll
	req := diversity.Requirement{C: 1, L: 4}

	cases := []struct {
		name string
		run  func() error
	}{
		{"progressive", func() error {
			_, err := ProgressiveCtx(ctx, example3Problem(t, req))
			return err
		}},
		{"game", func() error {
			_, err := GameCtx(ctx, example3Problem(t, req))
			return err
		}},
		{"smallest", func() error {
			_, err := SmallestCtx(ctx, example3Problem(t, req))
			return err
		}},
		{"random", func() error {
			_, err := RandomCtx(ctx, example3Problem(t, req), rand.New(rand.NewSource(3)))
			return err
		}},
		{"bfs", func() error {
			origin := originOf(map[chain.TokenID]chain.TxID{1: 1, 2: 2, 3: 3, 4: 4})
			_, err := BFSCtx(ctx, &ExactProblem{
				Target:   1,
				Universe: chain.NewTokenSet(1, 2, 3, 4),
				Origin:   origin,
				Req:      diversity.Requirement{C: 1, L: 2},
			})
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatal("cancelled solve returned a result")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled in chain, got %v", err)
			}
		})
	}
}

// A live context must leave results untouched: the Ctx variants with
// context.Background() are the plain entry points, so one solver solving the
// paper example both ways guards the wrappers.
func TestCtxWrappersMatchPlainEntryPoints(t *testing.T) {
	req := diversity.Requirement{C: 1, L: 4}
	plain, err := Progressive(example3Problem(t, req))
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := ProgressiveCtx(context.Background(), example3Problem(t, req))
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Tokens.Equal(viaCtx.Tokens) {
		t.Fatalf("wrapper drift: %v vs %v", plain.Tokens, viaCtx.Tokens)
	}
}
